//! Declarative experiment layer: named grids of simulation cells executed
//! on a worker pool with deterministic collection.
//!
//! Every figure reproduction follows the same shape — build a grid of
//! `(workload, configuration)` cells, run each one, derive relative
//! performance and geomeans, print tables. This module factors that shape
//! into three pieces:
//!
//! * [`ExperimentSpec`] — a named list of keyed [`CellSpec`]s. Cells carry
//!   workload *constructors* (not pre-built [`Workload`]s), so every worker
//!   builds its own instance and the whole spec is `Send + Sync`.
//! * [`Executor`] — runs cells on a `std::thread` pool (`jobs` workers).
//!   Results are keyed and re-sorted into declaration order, so the output
//!   of a parallel run is byte-identical to a serial one.
//! * [`ExperimentResult`] — keyed access to per-cell outcomes, failure
//!   reporting, and machine-readable JSON emission for `results/`.
//!
//! A failing cell (budget exhaustion, livelock, divergence, even a panic)
//! degrades to a structured [`CellOutcome::Failed`] row without aborting
//! its siblings. Pure cycle-budget failures are retried with a relaxed
//! budget according to the spec's [`RetryPolicy`].

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::SimError;
use crate::runner::{try_run_prefetch_exact, try_run_single, RunOptions, RunResult};
use crate::system::{System, SystemConfig, SystemResult};
use virec_core::CoreConfig;
use virec_mem::FabricConfig;
use virec_workloads::{Layout, Workload, WorkloadCtor};

/// A shareable workload constructor: each worker calls it to build its own
/// [`Workload`] instance, which keeps cells ownable per thread.
pub type WorkloadBuilder = Arc<dyn Fn() -> Workload + Send + Sync>;

/// Wraps a suite constructor into a [`WorkloadBuilder`] at a fixed problem
/// size and layout.
pub fn builder(ctor: WorkloadCtor, n: u64, layout: Layout) -> WorkloadBuilder {
    Arc::new(move || ctor(n, layout))
}

/// How budget failures are retried before a cell is declared failed.
///
/// The defaults reproduce the historical sweep behaviour: one retry with a
/// 4× relaxed `max_cycles`. Retries apply to [`Job::Single`] and
/// [`Job::System`] cells (the kinds whose budget the executor can scale);
/// prefetch-exact and custom cells fail on their first budget error.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Number of relaxed re-runs after a cycle-budget failure.
    pub budget_retries: u32,
    /// Budget multiplier applied on each retry (compounding).
    pub budget_factor: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            budget_retries: 1,
            budget_factor: 4,
        }
    }
}

impl RetryPolicy {
    /// No retries: every budget failure is immediately a failed row.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            budget_retries: 0,
            budget_factor: 1,
        }
    }
}

/// What a cell runs. All variants are `Send + Sync`, so the executor can
/// hand any cell to any worker.
#[derive(Clone)]
pub enum Job {
    /// A fallible single-core run ([`try_run_single`]).
    Single {
        /// Builds the worker-local workload instance.
        build: WorkloadBuilder,
        /// Core configuration (its `max_cycles` is scaled on retries).
        cfg: CoreConfig,
        /// Run options (fabric, verification, faults, …).
        opts: RunOptions,
    },
    /// Oracle recording plus an exact-context prefetching run
    /// ([`try_run_prefetch_exact`]).
    PrefetchExact {
        /// Builds the worker-local workload instance.
        build: WorkloadBuilder,
        /// Hardware thread count.
        nthreads: usize,
        /// Physical registers per thread for the prefetch core.
        regs_per_thread: usize,
        /// Fabric configuration shared by recording and replay.
        fabric: FabricConfig,
    },
    /// A multi-core system run ([`System::try_run`]); every core runs
    /// `ctor(n, Layout::for_core(i))`.
    System {
        /// System (cores + fabric) configuration; the per-core
        /// `max_cycles` is scaled on retries.
        cfg: SystemConfig,
        /// Workload constructor (a plain `fn`, inherently `Send`).
        ctor: WorkloadCtor,
        /// Problem size per core.
        n: u64,
    },
    /// Anything else — area-model evaluations, compiled-kernel drives,
    /// campaign wrappers. Must be deterministic; budget retries do not
    /// apply.
    Custom(Arc<dyn Fn() -> Result<CellData, SimError> + Send + Sync>),
}

/// One keyed cell of an experiment grid.
#[derive(Clone)]
pub struct CellSpec {
    /// Unique, stable key (also the JSON row label and sort identity).
    pub key: String,
    /// What the cell runs.
    pub job: Job,
}

/// A named, declarative experiment: keys plus jobs, executed by an
/// [`Executor`].
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Experiment name (used for the JSON file name in `results/`).
    pub name: String,
    /// Budget-retry policy applied to every cell.
    pub retry: RetryPolicy,
    cells: Vec<CellSpec>,
    keys: HashMap<String, usize>,
}

impl ExperimentSpec {
    /// An empty spec with the default retry policy.
    pub fn new(name: &str) -> ExperimentSpec {
        ExperimentSpec {
            name: name.to_string(),
            retry: RetryPolicy::default(),
            cells: Vec::new(),
            keys: HashMap::new(),
        }
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> ExperimentSpec {
        self.retry = retry;
        self
    }

    /// Adds a cell.
    ///
    /// # Panics
    /// Panics if `key` was already declared — keys are the identity that
    /// makes parallel collection deterministic, so duplicates are bugs.
    pub fn push(&mut self, key: impl Into<String>, job: Job) {
        let key = key.into();
        assert!(
            self.keys.insert(key.clone(), self.cells.len()).is_none(),
            "duplicate experiment cell key {key:?}"
        );
        self.cells.push(CellSpec { key, job });
    }

    /// Declares a single-core run cell.
    pub fn single(
        &mut self,
        key: impl Into<String>,
        build: WorkloadBuilder,
        cfg: CoreConfig,
        opts: &RunOptions,
    ) {
        self.push(
            key,
            Job::Single {
                build,
                cfg,
                opts: opts.clone(),
            },
        );
    }

    /// Declares an exact-context prefetching cell.
    pub fn prefetch_exact(
        &mut self,
        key: impl Into<String>,
        build: WorkloadBuilder,
        nthreads: usize,
        regs_per_thread: usize,
        fabric: FabricConfig,
    ) {
        self.push(
            key,
            Job::PrefetchExact {
                build,
                nthreads,
                regs_per_thread,
                fabric,
            },
        );
    }

    /// Declares a multi-core system cell.
    pub fn system(
        &mut self,
        key: impl Into<String>,
        cfg: SystemConfig,
        ctor: WorkloadCtor,
        n: u64,
    ) {
        self.push(key, Job::System { cfg, ctor, n });
    }

    /// Declares a custom cell.
    pub fn custom(
        &mut self,
        key: impl Into<String>,
        f: impl Fn() -> Result<CellData, SimError> + Send + Sync + 'static,
    ) {
        self.push(key, Job::Custom(Arc::new(f)));
    }

    /// Number of declared cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells have been declared.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The declared cells, in order.
    pub fn cells(&self) -> &[CellSpec] {
        &self.cells
    }
}

/// The payload of a completed cell.
#[derive(Clone, Debug)]
pub enum CellData {
    /// A verified single-core run.
    Run(Box<RunResult>),
    /// A multi-core system run.
    System(Box<SystemResult>),
    /// Named numeric metrics (area models, derived measurements).
    Metrics(Vec<(String, f64)>),
    /// Named descriptive fields (configuration listings).
    Fields(Vec<(String, String)>),
}

impl CellData {
    /// Builds a metrics payload from `(name, value)` pairs.
    pub fn metrics<const N: usize>(pairs: [(&str, f64); N]) -> CellData {
        CellData::Metrics(pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect())
    }

    /// Builds a fields payload from `(name, value)` pairs.
    pub fn fields<const N: usize>(pairs: [(&str, String); N]) -> CellData {
        CellData::Fields(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    /// Total cycles, when the payload carries them (a run, a system run,
    /// or a metric literally named `cycles`).
    pub fn cycles(&self) -> Option<u64> {
        match self {
            CellData::Run(r) => Some(r.cycles),
            CellData::System(s) => Some(s.cycles),
            CellData::Metrics(_) => self.metric("cycles").map(|v| v as u64),
            CellData::Fields(_) => None,
        }
    }

    /// A named metric (for [`CellData::Metrics`] payloads).
    pub fn metric(&self, name: &str) -> Option<f64> {
        match self {
            CellData::Metrics(m) => m.iter().find(|(k, _)| k == name).map(|(_, v)| *v),
            _ => None,
        }
    }

    /// A named descriptive field (for [`CellData::Fields`] payloads).
    pub fn field(&self, name: &str) -> Option<&str> {
        match self {
            CellData::Fields(f) => f.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str()),
            _ => None,
        }
    }
}

/// Outcome of one cell: a payload or a structured failure row.
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The cell completed.
    Ok(CellData),
    /// The cell failed; siblings are unaffected.
    Failed {
        /// Machine-readable kind (`cycle_budget`, `livelock`, …, `panic`).
        kind: &'static str,
        /// Full error line.
        error: String,
        /// True if the failure survived at least one relaxed budget retry.
        retried: bool,
    },
}

/// One collected result row.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell's key, copied from the spec.
    pub key: String,
    /// What happened.
    pub outcome: CellOutcome,
}

impl CellResult {
    /// The payload if the cell completed.
    pub fn data(&self) -> Option<&CellData> {
        match &self.outcome {
            CellOutcome::Ok(d) => Some(d),
            CellOutcome::Failed { .. } => None,
        }
    }
}

/// Results of an executed experiment, in declaration order.
pub struct ExperimentResult {
    /// Experiment name (copied from the spec).
    pub name: String,
    /// Per-cell results, in the spec's declaration order.
    pub cells: Vec<CellResult>,
    /// Worker count the run used.
    pub jobs: usize,
    index: HashMap<String, usize>,
}

impl ExperimentResult {
    /// The result row for `key`.
    ///
    /// # Panics
    /// Panics on an undeclared key — a figure asking for a cell it never
    /// declared is a bug, not a runtime condition.
    pub fn cell(&self, key: &str) -> &CellResult {
        let i = *self
            .index
            .get(key)
            .unwrap_or_else(|| panic!("experiment {:?} has no cell {key:?}", self.name));
        &self.cells[i]
    }

    /// The payload of `key`, if it completed.
    pub fn data(&self, key: &str) -> Option<&CellData> {
        self.cell(key).data()
    }

    /// The single-core run result of `key`, if it completed with one.
    pub fn run(&self, key: &str) -> Option<&RunResult> {
        match self.data(key) {
            Some(CellData::Run(r)) => Some(r),
            _ => None,
        }
    }

    /// The system run result of `key`, if it completed with one.
    pub fn system(&self, key: &str) -> Option<&SystemResult> {
        match self.data(key) {
            Some(CellData::System(s)) => Some(s),
            _ => None,
        }
    }

    /// Cycles of `key`, if available.
    pub fn cycles(&self, key: &str) -> Option<u64> {
        self.data(key).and_then(CellData::cycles)
    }

    /// A named metric of `key`, if available.
    pub fn metric(&self, key: &str, name: &str) -> Option<f64> {
        self.data(key).and_then(|d| d.metric(name))
    }

    /// A named descriptive field of `key`, if available.
    pub fn field(&self, key: &str, name: &str) -> Option<&str> {
        self.data(key).and_then(|d| d.field(name))
    }

    /// `(key, formatted error)` for every failed cell, in declaration
    /// order.
    pub fn failures(&self) -> Vec<(String, String)> {
        self.cells
            .iter()
            .filter_map(|c| match &c.outcome {
                CellOutcome::Failed {
                    kind,
                    error,
                    retried,
                } => {
                    let suffix = if *retried {
                        " (after budget retry)"
                    } else {
                        ""
                    };
                    Some((c.key.clone(), format!("[{kind}{suffix}] {error}")))
                }
                CellOutcome::Ok(_) => None,
            })
            .collect()
    }

    /// True if every cell completed.
    pub fn all_ok(&self) -> bool {
        self.failed() == 0
    }

    /// Number of failed cells.
    pub fn failed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Failed { .. }))
            .count()
    }

    /// Prints the failure rows (no-op when the sweep was clean).
    pub fn print_failures(&self) {
        let failures = self.failures();
        if failures.is_empty() {
            return;
        }
        println!("\n{} failed configuration(s):", failures.len());
        for (key, error) in &failures {
            println!("  {key}: {error}");
        }
    }

    /// Machine-readable JSON rows, in declaration order. Deliberately
    /// excludes wall-clock timing so a parallel run's output is
    /// byte-identical to a serial one.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 * self.cells.len() + 64);
        out.push_str("{\n  \"experiment\": ");
        json_string(&mut out, &self.name);
        out.push_str(",\n  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"key\": ");
            json_string(&mut out, &c.key);
            match &c.outcome {
                CellOutcome::Ok(d) => {
                    out.push_str(", \"status\": \"ok\"");
                    json_cell_data(&mut out, d);
                }
                CellOutcome::Failed {
                    kind,
                    error,
                    retried,
                } => {
                    out.push_str(", \"status\": \"failed\", \"error_kind\": ");
                    json_string(&mut out, kind);
                    out.push_str(&format!(", \"retried\": {retried}, \"error\": "));
                    // Keep only the structured first line; livelock dumps
                    // span pages and belong in stderr, not result rows.
                    json_string(&mut out, error.lines().next().unwrap_or(""));
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes [`ExperimentResult::to_json`] to `<dir>/<name>.json`,
    /// creating the directory if needed. Returns the written path.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` for JSON: finite shortest-roundtrip, non-finite as
/// null (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_cell_data(out: &mut String, d: &CellData) {
    match d {
        CellData::Run(r) => {
            out.push_str(&format!(
                ", \"cycles\": {}, \"instructions\": {}, \"ipc\": {}, \
                 \"context_switches\": {}, \"rf_hits\": {}, \"rf_misses\": {}, \
                 \"rf_hit_rate\": {}, \"arch_digest\": \"{:#018x}\"",
                r.cycles,
                r.stats.instructions,
                json_f64(r.ipc()),
                r.stats.context_switches,
                r.stats.rf_hits,
                r.stats.rf_misses,
                json_f64(r.stats.rf_hit_rate()),
                r.arch_digest,
            ));
        }
        CellData::System(s) => {
            out.push_str(&format!(
                ", \"cycles\": {}, \"ncores\": {}, \"total_ipc\": {}, \
                 \"mean_core_ipc\": {}, \"mean_queue_delay\": {}",
                s.cycles,
                s.per_core.len(),
                json_f64(s.total_ipc()),
                json_f64(s.mean_core_ipc()),
                json_f64(s.mean_queue_delay()),
            ));
        }
        CellData::Metrics(m) => {
            for (k, v) in m {
                out.push_str(", ");
                json_string(out, k);
                out.push_str(": ");
                out.push_str(&json_f64(*v));
            }
        }
        CellData::Fields(f) => {
            for (k, v) in f {
                out.push_str(", ");
                json_string(out, k);
                out.push_str(": ");
                json_string(out, v);
            }
        }
    }
}

/// Runs an [`ExperimentSpec`] on a pool of worker threads.
///
/// Cells are claimed from a shared queue and executed concurrently; each
/// result is stored at its cell's declaration index, so the collected
/// [`ExperimentResult`] — and everything rendered from it — is identical
/// for any worker count.
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// A pool with `jobs` workers (clamped to at least 1). `jobs == 1`
    /// executes inline on the calling thread, with no pool at all.
    pub fn new(jobs: usize) -> Executor {
        Executor { jobs: jobs.max(1) }
    }

    /// Executes every cell and collects results in declaration order.
    pub fn run(&self, spec: &ExperimentSpec) -> ExperimentResult {
        let outcomes: Vec<CellOutcome> = if self.jobs == 1 || spec.cells.len() <= 1 {
            spec.cells
                .iter()
                .map(|c| execute_cell(&c.job, spec.retry))
                .collect()
        } else {
            let slots: Vec<Mutex<Option<CellOutcome>>> =
                spec.cells.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let workers = self.jobs.min(spec.cells.len());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cell) = spec.cells.get(i) else {
                            break;
                        };
                        let outcome = execute_cell(&cell.job, spec.retry);
                        *slots[i].lock().unwrap() = Some(outcome);
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("every cell ran"))
                .collect()
        };
        ExperimentResult {
            name: spec.name.clone(),
            cells: spec
                .cells
                .iter()
                .zip(outcomes)
                .map(|(c, outcome)| CellResult {
                    key: c.key.clone(),
                    outcome,
                })
                .collect(),
            jobs: self.jobs,
            index: spec.keys.clone(),
        }
    }
}

/// Runs one cell with graceful degradation: typed errors and panics both
/// become failure rows, and budget failures of scalable jobs are retried
/// per the policy.
fn execute_cell(job: &Job, retry: RetryPolicy) -> CellOutcome {
    let attempt = |scale: u64| -> Result<CellData, SimError> {
        match job {
            Job::Single { build, cfg, opts } => {
                let w = build();
                let mut cfg = *cfg;
                cfg.max_cycles = cfg.max_cycles.saturating_mul(scale);
                try_run_single(cfg, &w, opts).map(|r| CellData::Run(Box::new(r)))
            }
            Job::PrefetchExact {
                build,
                nthreads,
                regs_per_thread,
                fabric,
            } => {
                let w = build();
                try_run_prefetch_exact(*nthreads, *regs_per_thread, &w, *fabric)
                    .map(|r| CellData::Run(Box::new(r)))
            }
            Job::System { cfg, ctor, n } => {
                let mut cfg = *cfg;
                cfg.core.max_cycles = cfg.core.max_cycles.saturating_mul(scale);
                System::new(cfg, *ctor, *n)
                    .try_run()
                    .map(|r| CellData::System(Box::new(r)))
            }
            Job::Custom(f) => f(),
        }
    };
    let scalable = matches!(job, Job::Single { .. } | Job::System { .. });
    let mut scale = 1u64;
    let mut retried = false;
    let mut retries_left = if scalable { retry.budget_retries } else { 0 };
    loop {
        match catch_unwind(AssertUnwindSafe(|| attempt(scale))) {
            Ok(Ok(data)) => return CellOutcome::Ok(data),
            Ok(Err(SimError::CycleBudgetExceeded { .. })) if retries_left > 0 => {
                retries_left -= 1;
                retried = true;
                scale = scale.saturating_mul(retry.budget_factor);
            }
            Ok(Err(e)) => {
                return CellOutcome::Failed {
                    kind: e.kind(),
                    error: e.to_string(),
                    retried,
                }
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("cell panicked");
                return CellOutcome::Failed {
                    kind: "panic",
                    error: msg.to_string(),
                    retried,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_workloads::kernels;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn specs_are_shareable_across_workers() {
        assert_send_sync::<ExperimentSpec>();
        assert_send_sync::<Job>();
    }

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new("unit");
        let b = builder(kernels::spatter::gather, 128, Layout::for_core(0));
        spec.single(
            "gather/virec",
            b.clone(),
            CoreConfig::virec(4, 32),
            &RunOptions::default(),
        );
        spec.single(
            "gather/banked",
            b,
            CoreConfig::banked(4),
            &RunOptions::default(),
        );
        spec.custom("area", || {
            Ok(CellData::metrics([("mm2", 1.5), ("cycles", 10.0)]))
        });
        spec
    }

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let spec = tiny_spec();
        let serial = Executor::new(1).run(&spec);
        let parallel = Executor::new(4).run(&spec);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(
            serial.cycles("gather/virec"),
            parallel.cycles("gather/virec")
        );
        assert!(serial.all_ok());
        // Declaration order is preserved.
        let keys: Vec<&str> = parallel.cells.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys, ["gather/virec", "gather/banked", "area"]);
    }

    #[test]
    fn metrics_cells_expose_named_values() {
        let res = Executor::new(2).run(&tiny_spec());
        assert_eq!(res.metric("area", "mm2"), Some(1.5));
        assert_eq!(res.cycles("area"), Some(10));
        assert_eq!(res.metric("area", "absent"), None);
    }

    #[test]
    fn failing_cell_degrades_without_aborting_siblings() {
        let mut spec = ExperimentSpec::new("unit_fail").with_retry(RetryPolicy {
            budget_retries: 1,
            budget_factor: 2,
        });
        let b = builder(kernels::spatter::gather, 256, Layout::for_core(0));
        let mut starved = CoreConfig::virec(4, 32);
        starved.max_cycles = 50; // hopeless even at 2x
        spec.single("starved", b.clone(), starved, &RunOptions::default());
        spec.single(
            "healthy",
            b,
            CoreConfig::virec(4, 32),
            &RunOptions::default(),
        );
        spec.custom("panics", || panic!("boom"));
        let res = Executor::new(3).run(&spec);
        match &res.cell("starved").outcome {
            CellOutcome::Failed { kind, retried, .. } => {
                assert_eq!(*kind, "cycle_budget");
                assert!(*retried, "budget failures are retried first");
            }
            CellOutcome::Ok(_) => panic!("a 50-cycle budget cannot complete gather"),
        }
        match &res.cell("panics").outcome {
            CellOutcome::Failed { kind, error, .. } => {
                assert_eq!(*kind, "panic");
                assert!(error.contains("boom"));
            }
            CellOutcome::Ok(_) => panic!("panicking cell must fail"),
        }
        assert!(res.run("healthy").is_some(), "siblings must complete");
        assert_eq!(res.failed(), 2);
        assert!(!res.all_ok());
        assert_eq!(res.failures().len(), 2);
    }

    #[test]
    fn retry_policy_none_fails_immediately() {
        let mut spec = ExperimentSpec::new("unit_noretry").with_retry(RetryPolicy::none());
        let b = builder(kernels::spatter::gather, 256, Layout::for_core(0));
        let mut starved = CoreConfig::virec(4, 32);
        starved.max_cycles = 50;
        spec.single("starved", b, starved, &RunOptions::default());
        match &Executor::new(1).run(&spec).cell("starved").outcome {
            CellOutcome::Failed { retried, .. } => {
                assert!(!retried, "RetryPolicy::none must not retry")
            }
            CellOutcome::Ok(_) => panic!("cannot complete in 50 cycles"),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate experiment cell key")]
    fn duplicate_keys_are_rejected() {
        let mut spec = ExperimentSpec::new("dup");
        spec.custom("k", || Ok(CellData::Metrics(Vec::new())));
        spec.custom("k", || Ok(CellData::Metrics(Vec::new())));
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut spec = ExperimentSpec::new("json \"quoted\"");
        spec.custom("fields", || {
            Ok(CellData::fields([("desc", "a\"b\\c\nd".to_string())]))
        });
        let res = Executor::new(1).run(&spec);
        let js = res.to_json();
        assert!(
            js.contains("\"experiment\": \"json \\\"quoted\\\"\""),
            "{js}"
        );
        assert!(js.contains("\"desc\": \"a\\\"b\\\\c\\nd\""), "{js}");
        assert!(js.contains("\"status\": \"ok\""));
    }
}
