//! Fault-tolerant streaming task service over the multi-core offload path.
//!
//! The paper's offload mechanism (§6) ships thread contexts from a host
//! into near-memory cores; everything below PR 6 ran one fixed workload
//! per core to completion. [`TaskService`] is the host-side serving layer
//! on top of that machinery: a seeded, reproducible arrival process of
//! offload tasks flows through a bounded admission queue onto idle cores
//! (fresh [`offload`] image per dispatch), and the service keeps its
//! throughput and accounting invariants under faults, hangs, and overload:
//!
//! * **Admission control** — arrivals beyond [`ServeConfig::queue_depth`]
//!   are shed with a typed [`RejectReason::QueueFull`]; once every core is
//!   quarantined, arriving *and* queued tasks drain with
//!   [`RejectReason::QuarantinedCapacity`] instead of deadlocking.
//! * **Per-task deadlines** — a cycle-denominated SLO deadline relative to
//!   arrival ([`ServeConfig::deadline_cycles`]) plus an optional wall-clock
//!   gate per attempt reusing [`RunGate`] ([`ServeConfig::task_deadline_ms`]).
//! * **Retry with backoff** — failed attempts re-dispatch with a
//!   geometrically scaled cycle budget, reusing the experiment layer's
//!   [`RetryPolicy`].
//! * **Quarantine & failover** — [`ServeConfig::quarantine_after`]
//!   consecutive failed attempts on one core quarantine it; the in-flight
//!   task that tripped the quarantine is re-dispatched to a healthy core
//!   without being charged a retry. Every task resolves to exactly one
//!   [`TaskOutcome`]: `completed + rejected + failed == submitted`, always.
//! * **Fault campaign** — [`ServeFaultPlan`] injects seeded word upsets
//!   into the data image of running tasks (single-bit transients and
//!   double-bit bursts on "sticky" bad cores), routed through the PR-5
//!   SEC-DED/parity protection model before they corrupt anything. An
//!   independent golden-digest cross-check counts silent corruptions on
//!   completed tasks even when verification is off.
//! * **Repair & degraded mode (PR-8)** — [`ServeFaultPlan::stuck_cores`]
//!   cores develop *permanent* defects that never heal. With
//!   [`ServeConfig::ras`] set, the first uncorrectable burst on such a
//!   core triggers the RAS path instead of quarantine: a spare region is
//!   consumed and the slot spends [`crate::ras::RasConfig::repair_cycles`]
//!   repairing (the in-flight task fails over exactly-once),
//!   or — spare pool dry — the core is *fenced* and keeps serving at 750
//!   millicores. Capacity is integrated in millicore-cycles so
//!   availability reports the loss without ever dropping a task.
//!
//! The report carries the serving-layer SLO metrics the north star asks
//! for: tasks/sec, p50/p99/p999 latency, availability (delivered
//! millicore-cycles over total capacity), goodput, and per-epoch fabric
//! traffic.

use crate::cancel::{CancelToken, RunGate};
use crate::ecc::{secded_decode, secded_encode, ProtectionConfig, ProtectionLevel, SecDedOutcome};
use crate::error::{RunDiagnostics, SimError};
use crate::experiment::{CellData, RetryPolicy};
use crate::fault::FaultSite;
use crate::offload::offload;
use crate::ras::{CeTracker, RasConfig};
use crate::runner::{arch_digest, engine_label, golden_arch_digest, try_verify_against_golden};
use crate::system::SystemConfigError;
use crate::watchdog::{Watchdog, DEFAULT_LIVELOCK_CYCLES};
use std::collections::{HashMap, HashSet, VecDeque};
use virec_core::policy::XorShift;
use virec_core::{Core, CoreConfig};
use virec_isa::FlatMem;
use virec_mem::{Fabric, FabricConfig, FabricStats};
use virec_workloads::{kernels, layout, Layout, Workload, WorkloadCtor};

/// Why an arriving (or queued) task was shed by admission control.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue was full at arrival.
    QueueFull,
    /// Every core was quarantined: no capacity remained to ever run it.
    QuarantinedCapacity,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "queue_full"),
            RejectReason::QuarantinedCapacity => write!(f, "quarantined_capacity"),
        }
    }
}

/// Final, exactly-once outcome of one submitted task.
#[derive(Clone, Debug)]
pub enum TaskOutcome {
    /// The task ran to completion (and verified, when verification is on).
    Completed {
        /// Arrival-to-completion latency in cycles.
        latency: u64,
        /// Dispatch attempts consumed (1 = completed on the first try).
        attempts: u32,
        /// Core slot that ran the successful attempt.
        core: usize,
    },
    /// Shed by admission control without ever running.
    Rejected(RejectReason),
    /// Every attempt the retry policy allowed failed.
    Failed {
        /// Dispatch attempts consumed (0 = expired while still queued).
        attempts: u32,
        /// `SimError::kind`-style tag of the last failure.
        kind: &'static str,
    },
}

/// Seeded service-level fault campaign: which tasks suffer transient
/// upsets and which cores turn sticky-bad mid-run.
///
/// Faults are realized as word flips in the tail of the running task's
/// data segment — bytes the kernel never touches, so the upset perturbs
/// the *architectural image* the golden checker compares, on any engine,
/// without changing the timing run. Routed through the per-site protection
/// model first: under SEC-DED a single-bit transient corrects in place and
/// a sticky double-bit burst raises detected-uncorrectable mid-attempt.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeFaultPlan {
    /// Number of distinct tasks (seeded choice) whose *first* attempt
    /// suffers a single-bit upset; retries run clean.
    pub transient: usize,
    /// Number of cores (seeded choice) that go bad: every attempt
    /// dispatched to such a core after onset suffers a double-bit burst.
    pub sticky_cores: usize,
    /// Number of cores (seeded choice) with a **stuck-at** defect: every
    /// attempt after onset suffers a double-bit burst, like a sticky core —
    /// but the damage is a localized permanent defect, so with
    /// [`ServeConfig::ras`] enabled the service repairs (spare) or fences
    /// the region instead of quarantining the whole core.
    pub stuck_cores: usize,
    /// Global dispatch count after which sticky/stuck cores turn bad (lets
    /// the service warm up healthy before the campaign bites).
    pub sticky_after: usize,
    /// Number of NoC link upsets injected over the run (one per dispatch
    /// after onset, hammering one link to the RAS CE threshold before
    /// moving to the next). Only lands when the shared fabric is a mesh
    /// ([`virec_mem::FabricTopology::Mesh`]); ignored on the crossbar.
    pub link_faults: usize,
}

impl ServeFaultPlan {
    /// No injected faults.
    pub fn none() -> ServeFaultPlan {
        ServeFaultPlan::default()
    }

    /// A campaign with `transient` one-shot task upsets and
    /// `sticky_cores` bad cores turning after a short warmup.
    pub fn campaign(transient: usize, sticky_cores: usize) -> ServeFaultPlan {
        ServeFaultPlan {
            transient,
            sticky_cores,
            stuck_cores: 0,
            sticky_after: 4,
            link_faults: 0,
        }
    }

    /// A wear campaign: `stuck_cores` cores develop permanent stuck-at
    /// defects after a short warmup (the RAS repair/fence path's stimulus).
    pub fn stuck(stuck_cores: usize) -> ServeFaultPlan {
        ServeFaultPlan {
            transient: 0,
            sticky_cores: 0,
            stuck_cores,
            sticky_after: 4,
            link_faults: 0,
        }
    }

    /// A transport-wear campaign: `link_faults` seeded upsets on mesh NoC
    /// links, exercising CRC/retransmission and predictive link retirement.
    pub fn links(link_faults: usize) -> ServeFaultPlan {
        ServeFaultPlan {
            transient: 0,
            sticky_cores: 0,
            stuck_cores: 0,
            sticky_after: 4,
            link_faults,
        }
    }
}

/// The default task mix: one spec per entry, chosen per arrival by the
/// seeded generator. Covers the paper's headline kernel plus streaming,
/// reduction, and dense-copy behaviour at problem size `n`.
pub fn default_mix(n: u64) -> Vec<(WorkloadCtor, u64)> {
    vec![
        (kernels::spatter::gather as WorkloadCtor, n),
        (kernels::stream::stream_triad as WorkloadCtor, n),
        (kernels::stream::reduction as WorkloadCtor, n),
        (kernels::dense::copy as WorkloadCtor, n),
    ]
}

/// Configuration of a [`TaskService`] run.
#[derive(Clone)]
pub struct ServeConfig {
    /// Number of near-memory cores available to the dispatcher.
    pub ncores: usize,
    /// Per-core configuration (every slot runs the same engine).
    pub core: CoreConfig,
    /// Shared fabric configuration.
    pub fabric: FabricConfig,
    /// Total tasks the arrival process generates.
    pub tasks: usize,
    /// Seed of the arrival process, task mix, and fault campaign.
    pub seed: u64,
    /// Mean cycles between arrivals (jittered uniformly in
    /// `[mean/2, 3*mean/2)`); clamped to at least 1.
    pub mean_interarrival: u64,
    /// Bound of the admission queue; arrivals past it are shed with
    /// [`RejectReason::QueueFull`]. Must be nonzero.
    pub queue_depth: usize,
    /// Per-task SLO deadline in cycles from *arrival* (queued wait
    /// included); 0 disables. An exceeded task fails with kind `deadline`.
    pub deadline_cycles: u64,
    /// Per-attempt wall-clock deadline in milliseconds through a
    /// [`RunGate`]; 0 disables.
    pub task_deadline_ms: u64,
    /// Retry policy for failed attempts: bounded count, geometrically
    /// scaled cycle budget.
    pub retry: RetryPolicy,
    /// Consecutive failed attempts on one core before it is quarantined;
    /// 0 disables quarantine.
    pub quarantine_after: u32,
    /// Protection levels the injected faults are routed through.
    pub protection: ProtectionConfig,
    /// The seeded service-level fault campaign.
    pub faults: ServeFaultPlan,
    /// RAS layer for permanent defects: `Some` lets a stuck-at core be
    /// repaired from the spare pool (slot offline for
    /// [`RasConfig::repair_cycles`] while data migrates) or, with the pool
    /// dry, fenced to reduced capacity — instead of being quarantined
    /// outright. `None` (the default) keeps the PR-6 behavior: a stuck
    /// core fails repeatedly until the health tracker quarantines it.
    pub ras: Option<RasConfig>,
    /// Task mix: each arrival picks one `(ctor, n)` spec (seeded).
    pub mix: Vec<(WorkloadCtor, u64)>,
    /// Verify every completed attempt against the golden interpreter.
    pub verify: bool,
    /// Cycles per reporting epoch (fabric-traffic snapshots); 0 disables.
    pub epoch_cycles: u64,
    /// Force the dense per-cycle step loop instead of the event-driven
    /// fast-forward (also forced globally by `VIREC_NO_SKIP=1`). Both loops
    /// produce byte-identical reports; this is a debugging escape hatch.
    pub dense_loop: bool,
}

impl ServeConfig {
    /// A streaming-service configuration with sensible defaults: default
    /// fabric, mean inter-arrival 2048 cycles, queue depth `2*ncores + 4`,
    /// no deadlines, default retry policy, quarantine after 3 consecutive
    /// failures, no protection, no faults, the [`default_mix`] at n=64,
    /// verification on.
    pub fn streaming(ncores: usize, core: CoreConfig, tasks: usize, seed: u64) -> ServeConfig {
        ServeConfig {
            ncores,
            core,
            fabric: FabricConfig::default(),
            tasks,
            seed,
            mean_interarrival: 2048,
            queue_depth: 2 * ncores.max(1) + 4,
            deadline_cycles: 0,
            task_deadline_ms: 0,
            retry: RetryPolicy::default(),
            quarantine_after: 3,
            protection: ProtectionConfig::none(),
            faults: ServeFaultPlan::none(),
            ras: None,
            mix: default_mix(64),
            verify: true,
            epoch_cycles: 1 << 16,
            dense_loop: false,
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.ncores == 0 {
            return Err(SystemConfigError::ZeroCores.into());
        }
        if self.queue_depth == 0 {
            return Err(config_error("admission queue depth must be nonzero"));
        }
        if self.mix.is_empty() {
            return Err(config_error("the task mix must name at least one workload"));
        }
        Ok(())
    }
}

/// LCG step over link-injection targets: deterministic, and independent of
/// the service's arrival/fault RNG so enabling the link campaign cannot
/// perturb any other seeded draw.
fn advance_link_target(t: u64) -> u64 {
    t.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
        | 1
}

fn config_error(detail: &str) -> SimError {
    SimError::Config {
        detail: detail.to_string(),
        diag: RunDiagnostics::placeholder("serve-config"),
    }
}

/// Fabric traffic and service occupancy over one reporting epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochStats {
    /// Service cycle at the end of the epoch.
    pub cycle: u64,
    /// Fabric traffic during this epoch (delta since the previous one).
    pub fabric: FabricStats,
    /// Admission-queue length at epoch end.
    pub queue_len: usize,
    /// Busy core slots at epoch end.
    pub busy: usize,
    /// Healthy (non-quarantined) core slots at epoch end.
    pub healthy: usize,
    /// Tasks completed so far.
    pub completed: usize,
}

/// Aggregated outcome of a [`TaskService`] run.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Engine label of the serving cores (`virec`, `banked`, ...).
    pub engine: String,
    /// Core count the service was built with.
    pub ncores: usize,
    /// Tasks the arrival process generated.
    pub submitted: usize,
    /// Tasks that completed (and verified) exactly once.
    pub completed: usize,
    /// Arrivals shed because the admission queue was full.
    pub rejected_queue_full: usize,
    /// Tasks shed because every core was quarantined.
    pub rejected_quarantined: usize,
    /// Tasks whose every allowed attempt failed.
    pub failed: usize,
    /// Re-dispatches charged to the retry policy.
    pub retries: usize,
    /// Re-dispatches caused by a core quarantine (not charged a retry).
    pub failovers: usize,
    /// Cores quarantined by the health tracker.
    pub quarantined_cores: usize,
    /// Stuck-at defects repaired from the spare pool (slot offline for
    /// the migration window, then back at full capacity).
    pub repairs: usize,
    /// Stuck-at defects fenced with the spare pool dry: the core keeps
    /// serving at reduced capacity instead of being quarantined.
    pub fenced_cores: usize,
    /// Spare regions consumed by repairs.
    pub spares_consumed: usize,
    /// Fault events realized by the campaign (corrected ones included).
    pub faults_injected: usize,
    /// Injected upsets corrected in place by the protection model.
    pub faults_corrected: usize,
    /// Injected upsets detected but uncorrectable (attempt aborted).
    pub faults_uncorrectable: usize,
    /// Completed tasks whose final state digest disagreed with the golden
    /// reference — must be zero whenever verification is on.
    pub silent_corruptions: usize,
    /// Tasks that resolved to more than one outcome (must be zero).
    pub duplicated: usize,
    /// Tasks that never resolved to any outcome (must be zero).
    pub lost: usize,
    /// Total service cycles.
    pub cycles: u64,
    /// Sum over all cycles of delivered capacity in **millicores**: a
    /// healthy core contributes 1000 per cycle, a fenced (degraded) core
    /// 750, a repairing or quarantined core 0. Availability divides this
    /// by `ncores * cycles * 1000`.
    pub capacity_millicore_cycles: u64,
    /// Completion latencies in cycles, sorted ascending.
    pub latencies: Vec<u64>,
    /// Cumulative shared-fabric statistics at end of run: per-port
    /// attribution plus the mesh NoC counters (hops, CRC catches,
    /// retransmissions, link retirements) when the topology is a mesh.
    pub fabric: FabricStats,
    /// Per-epoch fabric/occupancy snapshots.
    pub epochs: Vec<EpochStats>,
    /// Human-readable description of the most recent attempt failure, kept
    /// for post-mortem diagnosis of faulty campaigns.
    pub last_failure: Option<String>,
}

impl ServeReport {
    /// Tasks that resolved to some outcome.
    pub fn accounted(&self) -> usize {
        self.completed + self.rejected_queue_full + self.rejected_quarantined + self.failed
    }

    /// Completed fraction of submitted tasks.
    pub fn goodput(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.completed as f64 / self.submitted as f64
    }

    /// Time-weighted fraction of core capacity actually delivered, in
    /// millicore-cycles: quarantined and repairing slots deliver nothing,
    /// fenced slots deliver 750/1000, healthy slots the full 1000.
    pub fn availability(&self) -> f64 {
        let capacity = (self.ncores as u64 * self.cycles).saturating_mul(1000);
        if capacity == 0 {
            return 1.0;
        }
        self.capacity_millicore_cycles as f64 / capacity as f64
    }

    /// Completed tasks per second at the 1 GHz timing convention
    /// (cycles ≈ ns).
    pub fn tasks_per_sec(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.cycles as f64 * 1e-9)
    }

    /// Nearest-rank latency percentile in cycles (`p` in 0..=1); 0 when no
    /// task completed.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let idx = (p.clamp(0.0, 1.0) * (self.latencies.len() - 1) as f64).round() as usize;
        self.latencies[idx]
    }

    /// Median completion latency in cycles.
    pub fn p50(&self) -> u64 {
        self.latency_percentile(0.50)
    }

    /// 99th-percentile completion latency in cycles.
    pub fn p99(&self) -> u64 {
        self.latency_percentile(0.99)
    }

    /// 99.9th-percentile completion latency in cycles.
    pub fn p999(&self) -> u64 {
        self.latency_percentile(0.999)
    }

    /// Multi-line, stable-format summary (one `serve[engine]:` prefix per
    /// line; CI greps these).
    pub fn summary(&self) -> String {
        let e = &self.engine;
        let mut s = format!(
            "serve[{e}]: submitted={} completed={} rejected_queue_full={} \
             rejected_quarantined={} failed={} lost={} duplicated={}\n\
             serve[{e}]: faults injected={} corrected={} uncorrectable={} \
             silent_corruptions={} retries={} failovers={} quarantined_cores={}\n\
             serve[{e}]: p50={} p99={} p999={} cycles, tasks_per_sec={:.0}, \
             availability={:.1}%, goodput={:.1}%\n\
             serve[{e}]: ras repairs={} fenced_cores={} spares_consumed={}",
            self.submitted,
            self.completed,
            self.rejected_queue_full,
            self.rejected_quarantined,
            self.failed,
            self.lost,
            self.duplicated,
            self.faults_injected,
            self.faults_corrected,
            self.faults_uncorrectable,
            self.silent_corruptions,
            self.retries,
            self.failovers,
            self.quarantined_cores,
            self.p50(),
            self.p99(),
            self.p999(),
            self.tasks_per_sec(),
            self.availability() * 100.0,
            self.goodput() * 100.0,
            self.repairs,
            self.fenced_cores,
            self.spares_consumed,
        );
        // Transport line only when the run actually moved flits over a
        // mesh, so crossbar summaries stay byte-identical.
        if self.fabric.noc_hops > 0 {
            s.push_str(&format!(
                "\nserve[{e}]: noc hops={} crc_detected={} retransmissions={} \
                 links_retired={} links_fenced={}",
                self.fabric.noc_hops,
                self.fabric.noc_crc_detected,
                self.fabric.noc_retransmissions,
                self.fabric.noc_links_retired,
                self.fabric.noc_links_fenced,
            ));
        }
        s
    }

    /// The SLO summary as experiment-layer metrics, for emission into the
    /// machine-readable `results/<name>.json` provenance format.
    pub fn metrics(&self) -> CellData {
        let mut m = vec![
            ("submitted".to_string(), self.submitted as f64),
            ("completed".to_string(), self.completed as f64),
            (
                "rejected_queue_full".to_string(),
                self.rejected_queue_full as f64,
            ),
            (
                "rejected_quarantined".to_string(),
                self.rejected_quarantined as f64,
            ),
            ("failed".to_string(), self.failed as f64),
            ("lost".to_string(), self.lost as f64),
            ("duplicated".to_string(), self.duplicated as f64),
            ("retries".to_string(), self.retries as f64),
            ("failovers".to_string(), self.failovers as f64),
            (
                "quarantined_cores".to_string(),
                self.quarantined_cores as f64,
            ),
            ("repairs".to_string(), self.repairs as f64),
            ("fenced_cores".to_string(), self.fenced_cores as f64),
            ("spares_consumed".to_string(), self.spares_consumed as f64),
            ("faults_injected".to_string(), self.faults_injected as f64),
            ("faults_corrected".to_string(), self.faults_corrected as f64),
            (
                "faults_uncorrectable".to_string(),
                self.faults_uncorrectable as f64,
            ),
            (
                "silent_corruptions".to_string(),
                self.silent_corruptions as f64,
            ),
            ("cycles".to_string(), self.cycles as f64),
            ("tasks_per_sec".to_string(), self.tasks_per_sec()),
            ("p50_cycles".to_string(), self.p50() as f64),
            ("p99_cycles".to_string(), self.p99() as f64),
            ("p999_cycles".to_string(), self.p999() as f64),
            ("availability".to_string(), self.availability()),
            ("goodput".to_string(), self.goodput()),
        ];
        if self.fabric.noc_hops > 0 {
            m.push((
                "noc_retransmissions".to_string(),
                self.fabric.noc_retransmissions as f64,
            ));
            m.push((
                "noc_links_retired".to_string(),
                self.fabric.noc_links_retired as f64,
            ));
            m.push((
                "noc_links_fenced".to_string(),
                self.fabric.noc_links_fenced as f64,
            ));
        }
        CellData::Metrics(m)
    }
}

/// One admitted task's dispatch state.
#[derive(Clone, Copy, Debug)]
struct Task {
    id: usize,
    spec: usize,
    arrival: u64,
    attempts: u32,
    retries_left: u32,
    scale: u64,
}

/// A word upset scheduled against one attempt, applied `at` cycles after
/// dispatch.
#[derive(Clone, Copy, Debug)]
struct AttemptFault {
    at: u64,
    addr: u64,
    mask: u64,
}

struct InFlight {
    task: Task,
    core: Core,
    watchdog: Watchdog,
    dispatched_at: u64,
    budget: u64,
    gate: RunGate,
    /// Next local cycle the wall-clock gate is consulted (event-driven
    /// loops fast-forward the clock, so the gate runs on a schedule
    /// instead of a cycle mask).
    next_poll: u64,
    fault: Option<AttemptFault>,
}

enum Slot {
    Idle,
    Busy(Box<InFlight>),
    Quarantined,
    /// Offline while a stuck region's data migrates onto a spare; back to
    /// `Idle` (at full capacity) at cycle `until`.
    Repairing {
        until: u64,
    },
}

enum AttemptEnd {
    Done,
    Fail { kind: &'static str, detail: String },
}

/// The host-side streaming dispatcher: admission queue, per-core dispatch
/// through [`offload`], retry/quarantine/failover, and SLO accounting.
pub struct TaskService {
    cfg: ServeConfig,
    mem: FlatMem,
    fabric: Fabric,
    slots: Vec<Slot>,
    consec: Vec<u32>,
    workloads: Vec<Vec<Workload>>,
    golden: HashMap<(usize, usize), u64>,
    sticky: Vec<bool>,
    /// Cores with an un-retired stuck-at defect (cleared by repair/fence).
    stuck: Vec<bool>,
    /// Cores running fenced: the defect is out of service but so is part
    /// of the capacity (750/1000 millicores).
    fenced: Vec<bool>,
    /// Spare regions left in the service-wide RAS pool.
    spares_left: u32,
    /// Leaky-bucket CE counters over mesh NoC links (keys `(1<<62)|link`,
    /// mirroring the runner's keying).
    link_tracker: CeTracker,
    /// Remaining link upsets the campaign may inject.
    link_faults_left: usize,
    /// Current link-injection target (an opaque index the fabric reduces
    /// modulo its link population); advanced by an LCG once a target is
    /// retired, so the campaign wears out one link at a time.
    link_target: u64,
    transient_tasks: HashSet<usize>,
    arrivals: Vec<(u64, usize)>,
    rng: XorShift,
    token: CancelToken,
    /// Slot the next dispatch scan starts from (round-robin, so light
    /// load still exercises every healthy core rather than pinning to
    /// slot 0).
    next_slot: usize,
    dispatches: usize,
    accounted: usize,
    outcomes: Vec<Option<TaskOutcome>>,
    report: ServeReport,
}

impl TaskService {
    /// Builds the service: validates the configuration, realizes the
    /// seeded arrival process and fault campaign, and pre-instantiates the
    /// per-slot workload images.
    pub fn new(cfg: ServeConfig) -> Result<TaskService, SimError> {
        cfg.validate()?;
        let mut rng = XorShift::new(cfg.seed);
        let mean = cfg.mean_interarrival.max(1);
        let mut t = 0u64;
        let arrivals: Vec<(u64, usize)> = (0..cfg.tasks)
            .map(|_| {
                t += mean / 2 + rng.next_u64() % mean;
                let spec = (rng.next_u64() % cfg.mix.len() as u64) as usize;
                (t, spec)
            })
            .collect();

        let mut plan_rng = XorShift::new(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut transient_tasks = HashSet::new();
        if cfg.tasks > 0 {
            while transient_tasks.len() < cfg.faults.transient.min(cfg.tasks) {
                transient_tasks.insert((plan_rng.next_u64() % cfg.tasks as u64) as usize);
            }
        }
        let mut sticky = vec![false; cfg.ncores];
        let mut picked = 0;
        while picked < cfg.faults.sticky_cores.min(cfg.ncores) {
            let c = (plan_rng.next_u64() % cfg.ncores as u64) as usize;
            if !sticky[c] {
                sticky[c] = true;
                picked += 1;
            }
        }
        let mut stuck = vec![false; cfg.ncores];
        let mut picked = 0;
        while picked < cfg.faults.stuck_cores.min(cfg.ncores) {
            let c = (plan_rng.next_u64() % cfg.ncores as u64) as usize;
            if !stuck[c] {
                stuck[c] = true;
                picked += 1;
            }
        }

        let workloads: Vec<Vec<Workload>> = (0..cfg.ncores)
            .map(|slot| {
                cfg.mix
                    .iter()
                    .map(|&(ctor, n)| ctor(n, Layout::for_core(slot)))
                    .collect()
            })
            .collect();

        let report = ServeReport {
            engine: engine_label(&cfg.core).to_string(),
            ncores: cfg.ncores,
            submitted: cfg.tasks,
            ..ServeReport::default()
        };
        Ok(TaskService {
            mem: FlatMem::new(0, layout::mem_size(cfg.ncores)),
            fabric: Fabric::new(cfg.fabric),
            slots: (0..cfg.ncores).map(|_| Slot::Idle).collect(),
            consec: vec![0; cfg.ncores],
            workloads,
            golden: HashMap::new(),
            sticky,
            stuck,
            fenced: vec![false; cfg.ncores],
            spares_left: cfg.ras.map_or(0, |rc| rc.spare_rows),
            link_tracker: {
                let rc = cfg.ras.unwrap_or_default();
                CeTracker::new(rc.ce_threshold, rc.ce_leak_interval)
            },
            link_faults_left: cfg.faults.link_faults,
            link_target: cfg.seed | 1,
            transient_tasks,
            arrivals,
            rng: plan_rng,
            token: CancelToken::new(),
            next_slot: 0,
            dispatches: 0,
            accounted: 0,
            outcomes: vec![None; cfg.tasks],
            report,
            cfg,
        })
    }

    /// Runs the whole arrival process to drain and returns the report.
    pub fn run(&mut self) -> Result<ServeReport, SimError> {
        self.run_gated(&RunGate::unbounded())
    }

    /// [`TaskService::run`] under a service-wide cancellation gate. The
    /// gate's token is shared into every per-attempt gate, so one
    /// cancellation stops the service and all in-flight attempts.
    pub fn run_gated(&mut self, gate: &RunGate) -> Result<ServeReport, SimError> {
        self.token = gate.token().clone();
        let dense = crate::runner::dense_requested(self.cfg.dense_loop);
        let mut queue: VecDeque<Task> = VecDeque::new();
        let mut next_arrival = 0usize;
        let mut next_poll = 0u64;
        let mut now = 0u64;
        let mut next_epoch = self.cfg.epoch_cycles;

        while self.accounted < self.cfg.tasks {
            if let Some(trip) = gate.poll_due(now, &mut next_poll) {
                return Err(SimError::Deadline {
                    elapsed_ms: trip.elapsed_ms,
                    limit_ms: trip.limit_ms,
                    diag: RunDiagnostics::placeholder("serve"),
                });
            }

            // Repair completions: a slot whose migration window elapsed
            // returns to service at full capacity.
            for slot in &mut self.slots {
                if matches!(slot, Slot::Repairing { until } if now >= *until) {
                    *slot = Slot::Idle;
                }
            }

            // Admission: arrivals due this cycle either queue or shed.
            while next_arrival < self.arrivals.len() && self.arrivals[next_arrival].0 <= now {
                let (arrival, spec) = self.arrivals[next_arrival];
                let id = next_arrival;
                next_arrival += 1;
                let task = Task {
                    id,
                    spec,
                    arrival,
                    attempts: 0,
                    retries_left: self.cfg.retry.max_retries,
                    scale: 1,
                };
                if self.healthy() == 0 {
                    self.finish(id, TaskOutcome::Rejected(RejectReason::QuarantinedCapacity));
                } else if queue.len() >= self.cfg.queue_depth {
                    self.finish(id, TaskOutcome::Rejected(RejectReason::QueueFull));
                } else {
                    queue.push_back(task);
                }
            }

            // SLO shedding: tasks whose deadline passed while still queued.
            if self.cfg.deadline_cycles > 0 {
                let expired: Vec<Task> = {
                    let deadline = self.cfg.deadline_cycles;
                    let mut kept = VecDeque::with_capacity(queue.len());
                    let mut out = Vec::new();
                    for t in queue.drain(..) {
                        if now.saturating_sub(t.arrival) >= deadline {
                            out.push(t);
                        } else {
                            kept.push_back(t);
                        }
                    }
                    queue = kept;
                    out
                };
                for t in expired {
                    self.finish(
                        t.id,
                        TaskOutcome::Failed {
                            attempts: t.attempts,
                            kind: "deadline",
                        },
                    );
                }
            }

            // Dispatch queued tasks onto idle healthy slots. The scan
            // starts one past the last dispatched slot, so under light
            // load work rotates over every healthy core instead of
            // pinning to slot 0 (which would starve the fault campaign's
            // sticky cores of dispatches and hide them from quarantine).
            for off in 0..self.slots.len() {
                if queue.is_empty() {
                    break;
                }
                let i = (self.next_slot + off) % self.slots.len();
                if matches!(self.slots[i], Slot::Idle) {
                    let task = queue.pop_front().expect("queue checked non-empty");
                    self.dispatch(i, task, now);
                    self.next_slot = (i + 1) % self.slots.len();
                }
            }

            // A fully-quarantined service must drain, not hang.
            if self.healthy() == 0 {
                for t in queue.drain(..) {
                    self.finish(
                        t.id,
                        TaskOutcome::Rejected(RejectReason::QuarantinedCapacity),
                    );
                }
            }

            let busy = self.slots.iter().any(|s| matches!(s, Slot::Busy(_)));
            if busy {
                self.fabric.tick(now);
                // NoC watchdog: retry exhaustion or an over-age flit is a
                // transport failure the service cannot account around.
                if let Some(detail) = self.fabric.noc_fault().map(str::to_string) {
                    return Err(SimError::StructuralHazard {
                        detail,
                        diag: RunDiagnostics::placeholder("serve"),
                    });
                }
                let events = self.step_slots(now);
                for (slot, end) in events {
                    self.settle(slot, end, now, &mut queue);
                }
                self.report.capacity_millicore_cycles += self.capacity_millicores();
                now += 1;
                // Event-driven fast-forward over spans where every busy
                // slot is provably stalled and no dispatcher action
                // (arrival, dispatch, shed, epoch, fault, deadline) is due.
                if !dense {
                    if let Some(wake) = self.skip_target(&queue, next_arrival, next_epoch, now) {
                        let span = wake - now;
                        for slot in &mut self.slots {
                            if let Slot::Busy(inf) = slot {
                                inf.core.credit_skipped(span);
                            }
                        }
                        self.report.capacity_millicore_cycles += self.capacity_millicores() * span;
                        now = wake;
                    }
                }
            } else if next_arrival < self.arrivals.len() {
                // Idle: fast-forward to the next arrival — but never past a
                // repair completion, which changes both the delivered
                // capacity and the set of dispatchable slots mid-span.
                let mut target = self.arrivals[next_arrival].0.max(now + 1);
                if let Some(until) = self.earliest_repair() {
                    target = target.min(until.max(now + 1));
                }
                self.report.capacity_millicore_cycles +=
                    self.capacity_millicores() * (target - now);
                now = target;
            } else if let Some(until) = (!queue.is_empty())
                .then(|| self.earliest_repair())
                .flatten()
            {
                // Arrivals exhausted and every serving slot offline in
                // repair while work is still queued: advance to the first
                // repair completion so the queue drains there.
                let target = until.max(now + 1);
                self.report.capacity_millicore_cycles +=
                    self.capacity_millicores() * (target - now);
                now = target;
            } else {
                // No work in flight, nothing queued (drained above), no
                // arrivals left: every task is accounted.
                break;
            }

            if self.cfg.epoch_cycles > 0 && now >= next_epoch {
                self.push_epoch(now, queue.len());
                next_epoch = now + self.cfg.epoch_cycles;
            }
        }

        if self.cfg.epoch_cycles > 0 {
            self.push_epoch(now, queue.len());
        }
        self.report.cycles = now;
        self.report.lost = self.outcomes.iter().filter(|o| o.is_none()).count();
        self.report.latencies.sort_unstable();
        self.report.fabric = *self.fabric.stats();
        Ok(self.report.clone())
    }

    /// Every task's final outcome, indexed by task id (`None` = lost).
    pub fn outcomes(&self) -> &[Option<TaskOutcome>] {
        &self.outcomes
    }

    /// Slots that can still (eventually) serve: everything but
    /// quarantined. A repairing slot counts — it returns to service — so
    /// admission keeps queueing instead of shedding while repairs run.
    fn healthy(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s, Slot::Quarantined))
            .count()
    }

    /// Delivered capacity this cycle in millicores: healthy slots are
    /// worth 1000, fenced slots 750, repairing and quarantined slots 0.
    fn capacity_millicores(&self) -> u64 {
        let cap: u64 = self
            .slots
            .iter()
            .zip(&self.fenced)
            .map(|(s, &fenced)| match s {
                Slot::Quarantined | Slot::Repairing { .. } => 0,
                _ if fenced => 750,
                _ => 1000,
            })
            .sum();
        // Mesh link loss shrinks delivered capacity: a retired link's
        // bandwidth is gone (traffic routes around it), a fenced link
        // keeps half. Defect-free meshes and crossbars scale by 1.
        match self.fabric.link_health() {
            Some(h) if h.total > 0 => {
                cap * (2 * h.healthy as u64 + h.fenced as u64) / (2 * h.total as u64)
            }
            _ => cap,
        }
    }

    /// The earliest cycle a repairing slot returns to service.
    fn earliest_repair(&self) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Repairing { until } => Some(*until),
                _ => None,
            })
            .min()
    }

    /// The next cycle anything in the service can act, or `None` when no
    /// cycle before it may be skipped. Capped so every dispatcher action
    /// the dense loop performs lands on exactly the same cycle: the next
    /// arrival, queued-task SLO expiries, the epoch snapshot, and per-slot
    /// fault due-times, in-flight SLO deadlines, watchdog firing
    /// observations, and cycle-budget exhaustion.
    fn skip_target(
        &self,
        queue: &VecDeque<Task>,
        next_arrival: usize,
        next_epoch: u64,
        now: u64,
    ) -> Option<u64> {
        // Settlement may have idled every slot this very iteration; the
        // dense loop then exits or falls into the idle-branch fast-forward,
        // so a skip from here would overshoot it.
        if !self.slots.iter().any(|s| matches!(s, Slot::Busy(_))) {
            return None;
        }
        // A queued task with an idle slot dispatches at the very next
        // iteration; a queued task with zero healthy cores drains there.
        if !queue.is_empty()
            && (self.healthy() == 0 || self.slots.iter().any(|s| matches!(s, Slot::Idle)))
        {
            return None;
        }
        let ticked = now - 1;
        // Any busy core answering `now` (its productive fast path) pins the
        // joint wakeup to `now` — bail before the fabric scan and per-slot
        // cap arithmetic.
        let mut wake = u64::MAX;
        for slot in &self.slots {
            if let Slot::Busy(inf) = slot {
                if let Some(t) = inf.core.next_event(ticked, &self.fabric) {
                    if t <= now {
                        return None;
                    }
                    wake = wake.min(t);
                }
            }
        }
        if let Some(t) = self.fabric.next_event(ticked) {
            wake = wake.min(t);
        }
        for slot in &self.slots {
            let Slot::Busy(inf) = slot else { continue };
            if let Some(f) = inf.fault {
                wake = wake.min(inf.dispatched_at + f.at);
            }
            if self.cfg.deadline_cycles > 0 {
                wake = wake.min(inf.task.arrival + self.cfg.deadline_cycles);
            }
            if let Some(deadline) = inf.watchdog.deadline() {
                // `deadline` is a local observation cycle (observe runs at
                // local+1), so the tick that fires it is one earlier.
                wake = wake.min(inf.dispatched_at + deadline - 1);
            }
            wake = wake.min((inf.dispatched_at + inf.budget).saturating_sub(1));
        }
        // A repair completion changes delivered capacity and frees a slot;
        // the dense loop observes it on exactly that cycle.
        if let Some(until) = self.earliest_repair() {
            wake = wake.min(until);
        }
        if next_arrival < self.arrivals.len() {
            wake = wake.min(self.arrivals[next_arrival].0);
        }
        if self.cfg.deadline_cycles > 0 {
            for t in queue {
                wake = wake.min(t.arrival + self.cfg.deadline_cycles);
            }
        }
        if self.cfg.epoch_cycles > 0 {
            wake = wake.min(next_epoch);
        }
        (wake > now && wake != u64::MAX).then_some(wake)
    }

    fn push_epoch(&mut self, now: u64, queue_len: usize) {
        let fabric = self.fabric.epoch_stats();
        self.report.epochs.push(EpochStats {
            cycle: now,
            fabric,
            queue_len,
            busy: self
                .slots
                .iter()
                .filter(|s| matches!(s, Slot::Busy(_)))
                .count(),
            healthy: self.healthy(),
            completed: self.report.completed,
        });
    }

    /// Zeroes the slot's whole address span so a re-offload starts from a
    /// clean image: stale data from a previous (possibly killed or
    /// corrupted) task must never leak into the next task's golden
    /// comparison.
    fn scrub(&mut self, slot: usize) {
        const CHUNK: usize = 1 << 16;
        static ZEROS: [u8; CHUNK] = [0; CHUNK];
        let base = slot as u64 * layout::CORE_SPAN;
        let mut off = 0u64;
        while off < layout::CORE_SPAN {
            let len = CHUNK.min((layout::CORE_SPAN - off) as usize);
            self.mem.write_bytes(base + off, &ZEROS[..len]);
            off += len as u64;
        }
    }

    fn dispatch(&mut self, slot: usize, mut task: Task, now: u64) {
        task.attempts += 1;
        self.dispatches += 1;
        self.inject_link_upset(now);
        self.scrub(slot);
        let fault = self.plan_attempt_fault(slot, &task);
        let w = &self.workloads[slot][task.spec];
        let region = offload(&mut self.mem, w, self.cfg.core.nthreads);
        let core = Core::new(
            self.cfg.core,
            w.program().clone(),
            region,
            w.layout.code_base,
            (2 * slot, 2 * slot + 1),
        );
        let budget = self.cfg.core.max_cycles.saturating_mul(task.scale);
        self.slots[slot] = Slot::Busy(Box::new(InFlight {
            task,
            core,
            watchdog: Watchdog::new(DEFAULT_LIVELOCK_CYCLES),
            dispatched_at: now,
            budget,
            gate: RunGate::new(self.token.clone(), self.cfg.task_deadline_ms),
            next_poll: 0,
            fault,
        }));
    }

    /// Realizes one scheduled NoC link upset (dispatch-clocked, so both
    /// step loops inject on exactly the same cycles): the target link's
    /// next flit will arrive CRC-dirty and retransmit, and the service's
    /// CE tracker retires the link — route-around or half-bandwidth fence
    /// — once it crosses the RAS threshold. Crossbar fabrics have no
    /// links; the campaign is inert there.
    fn inject_link_upset(&mut self, now: u64) {
        if self.link_faults_left == 0 || self.dispatches <= self.cfg.faults.sticky_after {
            return;
        }
        let Some(link) = self.fabric.inject_link_fault(self.link_target) else {
            // Crossbar, or the target already out of service: move on (the
            // next dispatch attacks the advanced target).
            if self.fabric.link_health().is_some() {
                self.link_target = advance_link_target(self.link_target);
            }
            return;
        };
        self.link_faults_left -= 1;
        self.report.faults_injected += 1;
        let key = (1u64 << 62) | link as u64;
        if self.link_tracker.observe(key, now) {
            self.link_tracker.clear(key);
            let _ = self.fabric.retire_link(link);
            self.link_target = advance_link_target(self.link_target);
        }
    }

    /// Realizes the campaign for one attempt: sticky and stuck cores burst
    /// two bits of one word, transient tasks flip one bit on their first
    /// attempt.
    fn plan_attempt_fault(&mut self, slot: usize, task: &Task) -> Option<AttemptFault> {
        let onset = self.dispatches > self.cfg.faults.sticky_after;
        let sticky = self.sticky[slot] && onset;
        let stuck = self.stuck[slot] && onset;
        let transient = task.attempts == 1 && self.transient_tasks.contains(&task.id);
        if !sticky && !stuck && !transient {
            return None;
        }
        let w = &self.workloads[slot][task.spec];
        // Tail of the data segment: bytes no kernel touches, so the flip
        // perturbs the compared image without changing execution.
        let addr = w.layout.data_base + w.layout.data_size - 64 + 8 * (self.rng.next_u64() % 8);
        let b1 = (self.rng.next_u64() % 64) as u8;
        let mask = if sticky || stuck {
            let b2 = (b1 as u64 + 1 + self.rng.next_u64() % 63) % 64;
            (1u64 << b1) | (1u64 << b2)
        } else {
            1u64 << b1
        };
        Some(AttemptFault {
            at: 16 + self.rng.next_u64() % 240,
            addr,
            mask,
        })
    }

    /// Routes one scheduled word upset through the protection model.
    /// Returns the failure description when the upset was detected but
    /// uncorrectable (the attempt must abort).
    fn apply_fault(&mut self, fault: AttemptFault) -> Option<String> {
        self.report.faults_injected += 1;
        let level = self.cfg.protection.level(FaultSite::DramLine);
        let word = self.mem.read_u64(fault.addr);
        let mask = fault.mask;
        match level {
            ProtectionLevel::None => {
                self.mem.write_u64(fault.addr, word ^ mask);
                None
            }
            ProtectionLevel::Parity if mask.count_ones() % 2 == 1 => {
                self.report.faults_uncorrectable += 1;
                Some(format!(
                    "parity detected upset at {:#x} mask {mask:#x}",
                    fault.addr
                ))
            }
            ProtectionLevel::Parity => {
                // Even-weight flip: parity is blind, the corruption lands.
                self.mem.write_u64(fault.addr, word ^ mask);
                None
            }
            ProtectionLevel::SecDed => {
                let check = secded_encode(word);
                match secded_decode(word ^ mask, check) {
                    SecDedOutcome::CorrectedData(orig) => {
                        debug_assert_eq!(orig, word);
                        self.report.faults_corrected += 1;
                        None
                    }
                    SecDedOutcome::DoubleError => {
                        self.report.faults_uncorrectable += 1;
                        Some(format!(
                            "secded detected double-bit upset at {:#x} mask {mask:#x}",
                            fault.addr
                        ))
                    }
                    SecDedOutcome::Clean | SecDedOutcome::CorrectedCheck => None,
                }
            }
        }
    }

    /// Advances every busy slot one cycle; returns the attempts that ended
    /// this cycle (completed or failed) for settlement.
    fn step_slots(&mut self, now: u64) -> Vec<(usize, AttemptEnd)> {
        let mut events: Vec<(usize, AttemptEnd)> = Vec::new();
        // Due faults first (they may abort the attempt before its tick).
        for i in 0..self.slots.len() {
            let due = match &mut self.slots[i] {
                Slot::Busy(inf) => match inf.fault {
                    Some(f) if now - inf.dispatched_at >= f.at => {
                        inf.fault = None;
                        Some(f)
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some(f) = due {
                if let Some(detail) = self.apply_fault(f) {
                    events.push((
                        i,
                        AttemptEnd::Fail {
                            kind: "uncorrectable",
                            detail,
                        },
                    ));
                }
            }
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let Slot::Busy(inf) = slot else { continue };
            if events.iter().any(|(s, _)| *s == i) {
                continue; // already aborted by an uncorrectable upset
            }
            let local = now - inf.dispatched_at;
            if let Some(trip) = inf.gate.poll_due(local, &mut inf.next_poll) {
                events.push((
                    i,
                    AttemptEnd::Fail {
                        kind: "deadline",
                        detail: format!(
                            "wall-clock gate tripped after {} ms (limit {} ms)",
                            trip.elapsed_ms, trip.limit_ms
                        ),
                    },
                ));
                continue;
            }
            if self.cfg.deadline_cycles > 0
                && now.saturating_sub(inf.task.arrival) >= self.cfg.deadline_cycles
            {
                events.push((
                    i,
                    AttemptEnd::Fail {
                        kind: "deadline",
                        detail: format!(
                            "task exceeded its {}-cycle SLO deadline",
                            self.cfg.deadline_cycles
                        ),
                    },
                ));
                continue;
            }
            inf.core.tick(now, &mut self.fabric, &mut self.mem);
            if let Some(detail) = inf.core.structural_fault() {
                events.push((
                    i,
                    AttemptEnd::Fail {
                        kind: "structural_hazard",
                        detail: detail.to_string(),
                    },
                ));
                continue;
            }
            if inf.core.done() {
                events.push((i, AttemptEnd::Done));
                continue;
            }
            if let Err(stalled) = inf
                .watchdog
                .observe(local + 1, inf.core.stats().instructions)
            {
                events.push((
                    i,
                    AttemptEnd::Fail {
                        kind: "livelock",
                        detail: format!("no commit for {stalled} cycles"),
                    },
                ));
                continue;
            }
            if local + 1 >= inf.budget {
                events.push((
                    i,
                    AttemptEnd::Fail {
                        kind: "cycle_budget",
                        detail: format!("attempt exceeded {} cycles", inf.budget),
                    },
                ));
            }
        }
        events
    }

    /// Resolves one ended attempt: completion (verify + silent-corruption
    /// cross-check) or failure (retry / quarantine + failover / final).
    fn settle(&mut self, slot: usize, end: AttemptEnd, now: u64, queue: &mut VecDeque<Task>) {
        let Slot::Busy(inf) = std::mem::replace(&mut self.slots[slot], Slot::Idle) else {
            return;
        };
        let inf = *inf;
        let mut task = inf.task;
        let end = match end {
            AttemptEnd::Done => {
                let mut core = inf.core;
                core.finalize_stats();
                core.drain(&mut self.mem);
                let w = &self.workloads[slot][task.spec];
                let nthreads = self.cfg.core.nthreads;
                let verdict = if self.cfg.verify {
                    try_verify_against_golden(w, nthreads, &core, &self.mem, now).err()
                } else {
                    None
                };
                match verdict {
                    Some(e) => AttemptEnd::Fail {
                        kind: e.kind(),
                        detail: e.to_string(),
                    },
                    None => {
                        // Independent second net: a completed task whose
                        // digest disagrees with the golden reference is a
                        // silent corruption (provably impossible while
                        // verification is on).
                        let digest = arch_digest(&core, &self.mem, w, nthreads);
                        let step_cap = core.stats().instructions.saturating_mul(4) + 100_000;
                        let key = (slot, task.spec);
                        let golden = match self.golden.get(&key) {
                            Some(g) => Some(*g),
                            None => match golden_arch_digest(w, nthreads, step_cap) {
                                Ok(g) => {
                                    self.golden.insert(key, g);
                                    Some(g)
                                }
                                Err(_) => None,
                            },
                        };
                        if golden.is_some_and(|g| g != digest) {
                            self.report.silent_corruptions += 1;
                        }
                        self.consec[slot] = 0;
                        self.finish(
                            task.id,
                            TaskOutcome::Completed {
                                latency: now.saturating_sub(task.arrival) + 1,
                                attempts: task.attempts,
                                core: slot,
                            },
                        );
                        return;
                    }
                }
            }
            fail => fail,
        };
        let AttemptEnd::Fail { kind, detail } = end else {
            unreachable!("completions returned above")
        };
        self.report.last_failure = Some(format!(
            "task {} attempt {} on core {slot}: {kind}: {detail}",
            task.id, task.attempts
        ));
        // A failure on a core with an un-retired stuck-at defect is the
        // defect's doing, not the task's or the core's: the RAS layer
        // retires the region — onto a spare when one is left (slot offline
        // while the data migrates), fenced at reduced capacity otherwise —
        // and the victim task re-dispatches for free, like a failover.
        // Without RAS the defect keeps firing until quarantine takes the
        // whole core (the pre-RAS behavior).
        if self.stuck[slot] && self.dispatches > self.cfg.faults.sticky_after {
            if let Some(rc) = self.cfg.ras {
                self.stuck[slot] = false;
                self.consec[slot] = 0;
                if self.spares_left > 0 {
                    self.spares_left -= 1;
                    self.report.spares_consumed += 1;
                    self.report.repairs += 1;
                    self.slots[slot] = Slot::Repairing {
                        until: now + rc.repair_cycles.max(1),
                    };
                } else {
                    self.fenced[slot] = true;
                    self.report.fenced_cores += 1;
                }
                self.report.failovers += 1;
                queue.push_front(task);
                return;
            }
        }
        self.consec[slot] += 1;
        let quarantine_now = self.cfg.quarantine_after > 0
            && self.consec[slot] >= self.cfg.quarantine_after
            && !matches!(self.slots[slot], Slot::Quarantined);
        if quarantine_now {
            self.slots[slot] = Slot::Quarantined;
            self.report.quarantined_cores += 1;
            if self.healthy() > 0 {
                // Failover: the task that tripped the quarantine gets a
                // free re-dispatch to a healthy core.
                self.report.failovers += 1;
                queue.push_front(task);
            } else {
                self.finish(
                    task.id,
                    TaskOutcome::Failed {
                        attempts: task.attempts,
                        kind,
                    },
                );
            }
            return;
        }
        match self.cfg.retry.next_scale(task.scale) {
            Some(next) if task.retries_left > 0 => {
                task.retries_left -= 1;
                task.scale = next;
                self.report.retries += 1;
                queue.push_front(task);
            }
            _ => self.finish(
                task.id,
                TaskOutcome::Failed {
                    attempts: task.attempts,
                    kind,
                },
            ),
        }
    }

    /// Records the final outcome of `id` exactly once; a second resolution
    /// is counted as a duplication (an invariant violation CI fails on)
    /// and otherwise ignored.
    fn finish(&mut self, id: usize, outcome: TaskOutcome) {
        if self.outcomes[id].is_some() {
            self.report.duplicated += 1;
            return;
        }
        match &outcome {
            TaskOutcome::Completed { latency, .. } => {
                self.report.completed += 1;
                self.report.latencies.push(*latency);
            }
            TaskOutcome::Rejected(RejectReason::QueueFull) => {
                self.report.rejected_queue_full += 1;
            }
            TaskOutcome::Rejected(RejectReason::QuarantinedCapacity) => {
                self.report.rejected_quarantined += 1;
            }
            TaskOutcome::Failed { .. } => self.report.failed += 1,
        }
        self.outcomes[id] = Some(outcome);
        self.accounted += 1;
    }
}

/// Convenience wrapper: builds and runs a service in one call.
pub fn run_service(cfg: ServeConfig) -> Result<ServeReport, SimError> {
    TaskService::new(cfg)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(ncores: usize, tasks: usize) -> ServeConfig {
        let mut cfg = ServeConfig::streaming(ncores, CoreConfig::banked(2), tasks, 0xA11CE);
        cfg.mix = default_mix(32);
        cfg.mean_interarrival = 512;
        cfg
    }

    #[test]
    fn clean_service_completes_every_task() {
        let r = run_service(quick_cfg(2, 12)).expect("service runs");
        assert_eq!(r.completed, 12);
        assert_eq!(r.accounted(), r.submitted);
        assert_eq!(r.lost + r.duplicated + r.failed, 0);
        assert_eq!(r.latencies.len(), 12);
        assert!(r.p50() <= r.p99() && r.p99() <= r.p999());
        assert!(r.tasks_per_sec() > 0.0);
        assert!((r.availability() - 1.0).abs() < 1e-12);
        assert!((r.goodput() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mesh_link_campaign_retires_links_and_loses_no_tasks() {
        let mut cfg = quick_cfg(4, 24);
        cfg.fabric.topology = "mesh2x2".parse().unwrap();
        cfg.faults = ServeFaultPlan::links(9);
        cfg.ras = Some(RasConfig::default());
        let r = run_service(cfg).expect("mesh service runs");
        assert_eq!(r.accounted(), r.submitted);
        assert_eq!(r.lost + r.duplicated + r.silent_corruptions, 0);
        assert!(r.fabric.noc_hops > 0, "traffic must traverse the mesh");
        assert!(
            r.fabric.noc_retransmissions >= 1,
            "corrupted flits must be caught and retried"
        );
        assert!(
            r.fabric.noc_links_retired + r.fabric.noc_links_fenced >= 1,
            "nine upsets at threshold 3 must retire links"
        );
        assert!(
            r.availability() < 1.0,
            "lost link bandwidth must show up in availability"
        );
        assert!(r.summary().contains("noc hops="));
    }

    #[test]
    fn crossbar_link_campaign_is_inert() {
        let mut cfg = quick_cfg(2, 8);
        cfg.faults = ServeFaultPlan::links(6);
        let r = run_service(cfg).expect("service runs");
        assert_eq!(r.faults_injected, 0, "no links to attack on a crossbar");
        assert_eq!(r.completed, 8);
        assert!(!r.summary().contains("noc hops="));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = run_service(quick_cfg(3, 16)).unwrap();
        let b = run_service(quick_cfg(3, 16)).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn zero_cores_is_a_typed_config_error() {
        let err = TaskService::new(quick_cfg(0, 4)).err().expect("must fail");
        assert_eq!(err.kind(), "config");
    }

    #[test]
    fn zero_queue_depth_is_a_typed_config_error() {
        let mut cfg = quick_cfg(1, 4);
        cfg.queue_depth = 0;
        assert_eq!(TaskService::new(cfg).err().unwrap().kind(), "config");
    }

    #[test]
    fn empty_mix_is_a_typed_config_error() {
        let mut cfg = quick_cfg(1, 4);
        cfg.mix.clear();
        assert_eq!(TaskService::new(cfg).err().unwrap().kind(), "config");
    }

    #[test]
    fn overload_sheds_with_queue_full_not_deadlock() {
        let mut cfg = quick_cfg(1, 40);
        cfg.mean_interarrival = 8; // far beyond one core's capacity
        cfg.queue_depth = 2;
        let r = run_service(cfg).unwrap();
        assert!(r.rejected_queue_full > 0, "overload must shed load");
        assert_eq!(r.accounted(), r.submitted);
        assert_eq!(r.lost, 0);
        assert_eq!(r.duplicated, 0);
    }

    #[test]
    fn transient_fault_is_detected_and_retried() {
        let mut cfg = quick_cfg(1, 6);
        cfg.faults = ServeFaultPlan {
            transient: 6,
            sticky_cores: 0,
            stuck_cores: 0,
            sticky_after: 0,
            link_faults: 0,
        };
        cfg.quarantine_after = 0; // isolate the retry path
        let r = run_service(cfg).unwrap();
        assert_eq!(r.faults_injected, 6);
        assert!(r.retries > 0, "detected divergences must trigger retries");
        assert_eq!(r.completed, 6, "clean retries must complete every task");
        assert_eq!(r.silent_corruptions, 0);
        assert_eq!(r.accounted(), r.submitted);
    }

    #[test]
    fn secded_corrects_single_bit_transients_in_place() {
        let mut cfg = quick_cfg(1, 6);
        cfg.faults = ServeFaultPlan {
            transient: 6,
            sticky_cores: 0,
            stuck_cores: 0,
            sticky_after: 0,
            link_faults: 0,
        };
        cfg.protection = ProtectionConfig::secded();
        let r = run_service(cfg).unwrap();
        assert_eq!(r.faults_corrected, 6);
        assert_eq!(r.completed, 6);
        assert_eq!(r.retries, 0, "corrected upsets never cost a retry");
    }

    #[test]
    fn sticky_core_quarantines_and_fails_over() {
        let mut cfg = quick_cfg(2, 20);
        cfg.faults = ServeFaultPlan {
            transient: 0,
            sticky_cores: 1,
            stuck_cores: 0,
            sticky_after: 2,
            link_faults: 0,
        };
        cfg.protection = ProtectionConfig::secded();
        cfg.quarantine_after = 2;
        let r = run_service(cfg).unwrap();
        assert_eq!(r.quarantined_cores, 1);
        assert!(
            r.failovers >= 1,
            "quarantine must re-dispatch in-flight work"
        );
        assert!(r.faults_uncorrectable >= 2);
        assert_eq!(r.accounted(), r.submitted);
        assert_eq!(r.lost + r.duplicated + r.silent_corruptions, 0);
        assert!(r.availability() < 1.0, "a quarantined core costs capacity");
    }

    #[test]
    fn fully_quarantined_service_drains_with_rejections() {
        let mut cfg = quick_cfg(1, 15);
        cfg.faults = ServeFaultPlan {
            transient: 0,
            sticky_cores: 1,
            stuck_cores: 0,
            sticky_after: 0,
            link_faults: 0,
        };
        cfg.protection = ProtectionConfig::secded();
        cfg.quarantine_after = 1;
        cfg.retry = RetryPolicy::none();
        let r = run_service(cfg).unwrap();
        assert_eq!(r.quarantined_cores, 1);
        assert!(r.rejected_quarantined > 0, "drain must be typed rejections");
        assert_eq!(r.completed + r.failed + r.rejected_quarantined, r.submitted);
        assert_eq!(r.lost, 0);
    }

    #[test]
    fn queued_tasks_past_their_slo_deadline_fail_typed() {
        let mut cfg = quick_cfg(1, 30);
        cfg.mean_interarrival = 8;
        cfg.queue_depth = 30; // admit everything; the deadline must shed
        cfg.deadline_cycles = 2_000;
        let r = run_service(cfg).unwrap();
        assert!(r.failed > 0, "queued tasks must expire against the SLO");
        assert_eq!(r.accounted(), r.submitted);
    }

    #[test]
    fn epochs_capture_fabric_traffic() {
        let mut cfg = quick_cfg(2, 10);
        cfg.epoch_cycles = 4096;
        let r = run_service(cfg).unwrap();
        assert!(!r.epochs.is_empty());
        let reads: u64 = r.epochs.iter().map(|e| e.fabric.reads).sum();
        assert!(reads > 0, "epoch deltas must add up to real traffic");
    }

    #[test]
    fn summary_and_metrics_are_consistent() {
        let r = run_service(quick_cfg(2, 8)).unwrap();
        let s = r.summary();
        assert!(s.contains("lost=0 duplicated=0"), "{s}");
        assert!(s.contains("silent_corruptions=0"), "{s}");
        let CellData::Metrics(m) = r.metrics() else {
            panic!("metrics cell expected")
        };
        let get = |k: &str| m.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert_eq!(get("completed") as usize, r.completed);
        assert_eq!(get("p99_cycles") as u64, r.p99());
        assert!((get("availability") - r.availability()).abs() < 1e-12);
    }

    #[test]
    fn reject_reason_labels_are_stable() {
        assert_eq!(RejectReason::QueueFull.to_string(), "queue_full");
        assert_eq!(
            RejectReason::QuarantinedCapacity.to_string(),
            "quarantined_capacity"
        );
    }
}
