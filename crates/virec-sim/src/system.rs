//! Multi-core near-memory systems (Figure 11): several processors share the
//! crossbar and DRAM, so memory latency observed by each core grows with
//! system activity.

use crate::cancel::RunGate;
use crate::error::{RunDiagnostics, SimError};
use crate::offload::offload;
use crate::watchdog::{Watchdog, DEFAULT_LIVELOCK_CYCLES};
use virec_core::{Core, CoreConfig, CoreStats};
use virec_isa::FlatMem;
use virec_mem::{Fabric, FabricConfig, FabricStats};
use virec_workloads::{layout, Layout, Workload, WorkloadCtor};

/// Configuration of a multi-core system. Every core runs the same core
/// configuration and its own instance of the same workload on a private
/// slice of memory (the paper's per-processor offload regions).
///
/// The system's cycle budget is not configured here: it is derived as the
/// maximum of the per-core `CoreConfig::max_cycles` values, so a single
/// knob governs both single-core and system runs.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Number of near-memory processors on the crossbar.
    pub ncores: usize,
    /// Per-core configuration.
    pub core: CoreConfig,
    /// Shared fabric configuration.
    pub fabric: FabricConfig,
}

/// Why a [`System`] (or the serve layer built on top of it) could not be
/// constructed. Surfaced as [`SimError::Config`] through `From`, so
/// callers working at the `SimError` level get a typed `config` kind
/// instead of a construction panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemConfigError {
    /// `ncores` was zero — a system needs at least one core.
    ZeroCores,
    /// The workload-spec slice length disagrees with `ncores`.
    WorkloadArity {
        /// `cfg.ncores`.
        expected: usize,
        /// `specs.len()`.
        got: usize,
    },
    /// The per-core-config slice length disagrees with `ncores`.
    CoreArity {
        /// `cfg.ncores`.
        expected: usize,
        /// `core_cfgs.len()`.
        got: usize,
    },
}

impl std::fmt::Display for SystemConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemConfigError::ZeroCores => {
                write!(f, "a system needs at least one core (ncores == 0)")
            }
            SystemConfigError::WorkloadArity { expected, got } => {
                write!(
                    f,
                    "one workload spec per core: expected {expected}, got {got}"
                )
            }
            SystemConfigError::CoreArity { expected, got } => {
                write!(
                    f,
                    "one core config per core: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for SystemConfigError {}

impl From<SystemConfigError> for SimError {
    fn from(e: SystemConfigError) -> SimError {
        SimError::Config {
            detail: e.to_string(),
            diag: RunDiagnostics::placeholder("system-config"),
        }
    }
}

/// Result of a system run.
#[derive(Clone, Debug)]
pub struct SystemResult {
    /// Cycles until *every* core finished.
    pub cycles: u64,
    /// Per-core statistics.
    pub per_core: Vec<CoreStats>,
    /// Shared crossbar/DRAM statistics (for observed-latency analysis).
    pub fabric: FabricStats,
}

impl SystemResult {
    /// Mean cycles a memory request queued in the fabric before service —
    /// the "observed latency" increase of Figure 11.
    pub fn mean_queue_delay(&self) -> f64 {
        let reqs = self.fabric.reads + self.fabric.writes;
        if reqs == 0 {
            0.0
        } else {
            self.fabric.queue_cycles as f64 / reqs as f64
        }
    }

    /// Aggregate instructions per cycle across the whole system.
    pub fn total_ipc(&self) -> f64 {
        let insts: u64 = self.per_core.iter().map(|s| s.instructions).sum();
        insts as f64 / self.cycles as f64
    }

    /// Mean per-core IPC (0.0 for an empty system, not a division by
    /// zero).
    pub fn mean_core_ipc(&self) -> f64 {
        if self.per_core.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .per_core
            .iter()
            .map(|s| s.instructions as f64 / self.cycles as f64)
            .sum();
        sum / self.per_core.len() as f64
    }
}

/// A system of identical near-memory cores sharing one fabric.
pub struct System {
    cores: Vec<Core>,
    fabric: Fabric,
    mem: FlatMem,
    workloads: Vec<Workload>,
    cfg: SystemConfig,
    /// Force the dense per-cycle step loop (see
    /// [`crate::runner::RunOptions::dense_loop`]); the event-driven loop is
    /// byte-identical, so this is a debugging escape hatch only.
    dense_loop: bool,
}

impl System {
    /// Builds a system where core `i` runs `ctor(n, Layout::for_core(i))`.
    ///
    /// # Panics
    /// Panics on an invalid shape; see [`System::try_new`].
    pub fn new(cfg: SystemConfig, ctor: WorkloadCtor, n: u64) -> System {
        Self::try_new(cfg, ctor, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`System::new`]: rejects `ncores == 0` with a
    /// typed [`SystemConfigError`] instead of building a degenerate
    /// system.
    pub fn try_new(
        cfg: SystemConfig,
        ctor: WorkloadCtor,
        n: u64,
    ) -> Result<System, SystemConfigError> {
        let specs = vec![(ctor, n); cfg.ncores];
        Self::try_new_mixed(cfg, &specs)
    }

    /// Builds a heterogeneous system: core `i` runs `specs[i]` — a
    /// multi-programmed near-memory node, each processor offloaded a
    /// different kernel.
    ///
    /// # Panics
    /// Panics if `specs.len() != cfg.ncores`; see
    /// [`System::try_new_mixed`].
    pub fn new_mixed(cfg: SystemConfig, specs: &[(WorkloadCtor, u64)]) -> System {
        Self::try_new_mixed(cfg, specs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`System::new_mixed`], returning a typed
    /// [`SystemConfigError`] on any invalid shape.
    pub fn try_new_mixed(
        cfg: SystemConfig,
        specs: &[(WorkloadCtor, u64)],
    ) -> Result<System, SystemConfigError> {
        let cores = vec![cfg.core; specs.len()];
        Self::try_new_heterogeneous(cfg, &cores, specs)
    }

    /// Fully heterogeneous construction: per-core configurations *and*
    /// per-core workloads — e.g. banked and ViReC processors contending on
    /// the same crossbar.
    ///
    /// # Panics
    /// Panics if the slice lengths disagree with `cfg.ncores`; see
    /// [`System::try_new_heterogeneous`].
    pub fn new_heterogeneous(
        cfg: SystemConfig,
        core_cfgs: &[CoreConfig],
        specs: &[(WorkloadCtor, u64)],
    ) -> System {
        Self::try_new_heterogeneous(cfg, core_cfgs, specs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`System::new_heterogeneous`]: every invalid
    /// shape (zero cores, mismatched spec or core-config arity) is a
    /// typed [`SystemConfigError`] instead of an assertion failure.
    pub fn try_new_heterogeneous(
        cfg: SystemConfig,
        core_cfgs: &[CoreConfig],
        specs: &[(WorkloadCtor, u64)],
    ) -> Result<System, SystemConfigError> {
        if cfg.ncores == 0 {
            return Err(SystemConfigError::ZeroCores);
        }
        if specs.len() != cfg.ncores {
            return Err(SystemConfigError::WorkloadArity {
                expected: cfg.ncores,
                got: specs.len(),
            });
        }
        if core_cfgs.len() != cfg.ncores {
            return Err(SystemConfigError::CoreArity {
                expected: cfg.ncores,
                got: core_cfgs.len(),
            });
        }
        let mut mem = FlatMem::new(0, layout::mem_size(cfg.ncores));
        let mut cores = Vec::with_capacity(cfg.ncores);
        let mut workloads = Vec::with_capacity(cfg.ncores);
        for (c, (&(ctor, n), core_cfg)) in specs.iter().zip(core_cfgs).enumerate() {
            let w = ctor(n, Layout::for_core(c));
            let region = offload(&mut mem, &w, core_cfg.nthreads);
            cores.push(Core::new(
                *core_cfg,
                w.program().clone(),
                region,
                w.layout.code_base,
                (2 * c, 2 * c + 1),
            ));
            workloads.push(w);
        }
        Ok(System {
            cores,
            fabric: Fabric::new(cfg.fabric),
            mem,
            workloads,
            cfg,
            dense_loop: false,
        })
    }

    /// Forces the dense per-cycle loop for this system (normally the run
    /// loop fast-forwards over provably idle spans; `VIREC_NO_SKIP=1` has
    /// the same effect globally). Both loops produce byte-identical
    /// results, so this is a debugging/differential-testing knob.
    pub fn set_dense_loop(&mut self, dense: bool) {
        self.dense_loop = dense;
    }

    /// Per-core statistics access while the system is alive (post-run).
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The system cycle budget: the most generous per-core budget, since
    /// the slowest core bounds completion under shared-fabric contention.
    pub fn cycle_budget(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.config().max_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Fallible system run: executes to completion and verifies every core
    /// against the golden interpreter, returning a typed [`SimError`] on
    /// budget exhaustion, livelock, or divergence.
    pub fn try_run(&mut self) -> Result<SystemResult, SimError> {
        self.try_run_gated(&RunGate::unbounded())
    }

    /// [`System::try_run`] under a cancellation gate: the step loop polls
    /// `gate` and degrades to a typed [`SimError::Deadline`] when the
    /// per-cell wall-clock deadline expires or cancellation is requested.
    pub fn try_run_gated(&mut self, gate: &RunGate) -> Result<SystemResult, SimError> {
        let budget = self.cycle_budget();
        let mut watchdog = Watchdog::new(DEFAULT_LIVELOCK_CYCLES);
        if let Some(trip) = gate.trip() {
            return Err(SimError::Deadline {
                elapsed_ms: trip.elapsed_ms,
                limit_ms: trip.limit_ms,
                diag: self.capture_diag(0),
            });
        }
        let dense = crate::runner::dense_requested(self.dense_loop);
        let mut next_poll = 0u64;
        let mut now = 0u64;
        while !self.cores.iter().all(|c| c.done()) {
            if let Some(trip) = gate.poll_due(now, &mut next_poll) {
                return Err(SimError::Deadline {
                    elapsed_ms: trip.elapsed_ms,
                    limit_ms: trip.limit_ms,
                    diag: self.capture_diag(now),
                });
            }
            self.fabric.tick(now);
            // The NoC watchdog latches on retry exhaustion or an over-age
            // flit (routing livelock): surface it as a structural hazard
            // rather than letting the run starve into a livelock trip.
            if let Some(detail) = self.fabric.noc_fault().map(str::to_string) {
                return Err(SimError::StructuralHazard {
                    detail,
                    diag: self.capture_diag(now),
                });
            }
            for core in &mut self.cores {
                if !core.done() {
                    core.tick(now, &mut self.fabric, &mut self.mem);
                }
            }
            now += 1;
            let committed: u64 = self.cores.iter().map(|c| c.stats().instructions).sum();
            if let Err(stalled) = watchdog.observe(now, committed) {
                return Err(SimError::Livelock {
                    stalled_cycles: stalled,
                    dump: self.debug_dump(),
                    diag: self.capture_diag(now),
                });
            }
            if now >= budget {
                return Err(SimError::CycleBudgetExceeded {
                    budget,
                    diag: self.capture_diag(now),
                });
            }
            // Event-driven fast-forward: when every unfinished core and the
            // shared fabric agree nothing can happen before `wake`, jump the
            // whole system there and credit each unfinished core's stall
            // counters for the span (finished cores stop ticking in the
            // dense loop too, so they are not credited).
            if !dense && !self.cores.iter().all(|c| c.done()) {
                let ticked = now - 1;
                // Any core answering `now` (its productive fast path) pins
                // the joint wakeup to `now` — bail before the fabric scan.
                let mut next: Option<u64> = None;
                let mut busy_now = false;
                for core in self.cores.iter().filter(|c| !c.done()) {
                    if let Some(t) = core.next_event(ticked, &self.fabric) {
                        if t <= now {
                            busy_now = true;
                            break;
                        }
                        next = Some(next.map_or(t, |m: u64| m.min(t)));
                    }
                }
                if busy_now {
                    continue;
                }
                if let Some(t) = self.fabric.next_event(ticked) {
                    next = Some(next.map_or(t, |m: u64| m.min(t)));
                }
                let mut wake = next.unwrap_or(u64::MAX);
                if let Some(deadline) = watchdog.deadline() {
                    wake = wake.min(deadline - 1);
                }
                wake = wake.min(budget - 1);
                if wake > now {
                    let span = wake - now;
                    for core in &mut self.cores {
                        if !core.done() {
                            core.credit_skipped(span);
                        }
                    }
                    now = wake;
                }
            }
        }
        for core in &mut self.cores {
            core.finalize_stats();
            core.drain(&mut self.mem);
        }
        for (core, w) in self.cores.iter().zip(&self.workloads) {
            crate::runner::try_verify_against_golden(
                w,
                core.config().nthreads,
                core,
                &self.mem,
                now,
            )?;
        }
        Ok(SystemResult {
            cycles: now,
            per_core: self.cores.iter().map(|c| *c.stats()).collect(),
            fabric: *self.fabric.stats(),
        })
    }

    /// Runs the system to completion and verifies every core against the
    /// golden interpreter.
    ///
    /// # Panics
    /// Panics with the [`SimError`] display on any failure; use
    /// [`System::try_run`] to handle failures structurally.
    pub fn run(&mut self) -> SystemResult {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Diagnostics for the most-stuck core: the first core that has not
    /// finished (or core 0 if all finished), labelled with its workload.
    fn capture_diag(&self, now: u64) -> Box<RunDiagnostics> {
        let i = self
            .cores
            .iter()
            .position(|c| !c.done())
            .unwrap_or_default();
        RunDiagnostics::capture(self.workloads[i].name, &self.cores[i], now)
    }

    /// Concatenated per-core pipeline dumps for every unfinished core.
    fn debug_dump(&self) -> String {
        let mut s = String::new();
        for (i, core) in self.cores.iter().enumerate() {
            if !core.done() {
                s.push_str(&format!(
                    "--- core {i} ({}) ---\n{}",
                    self.workloads[i].name,
                    core.debug_dump()
                ));
            }
        }
        if s.is_empty() {
            s.push_str("(all cores report done)");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_workloads::kernels;

    fn sys_cfg(ncores: usize, core: CoreConfig) -> SystemConfig {
        SystemConfig {
            ncores,
            core,
            fabric: FabricConfig::default(),
        }
    }

    #[test]
    fn two_core_system_completes_and_verifies() {
        let cfg = sys_cfg(2, CoreConfig::virec(4, 32));
        let mut sys = System::new(cfg, kernels::spatter::gather, 256);
        let r = sys.run();
        assert_eq!(r.per_core.len(), 2);
        assert!(r.cycles > 0);
    }

    #[test]
    fn mixed_workload_system_verifies() {
        let cfg = sys_cfg(3, CoreConfig::virec(4, 32));
        let specs: Vec<(virec_workloads::WorkloadCtor, u64)> = vec![
            (kernels::spatter::gather, 256),
            (kernels::stream::stream_triad, 256),
            (kernels::sparse::spmv, 64),
        ];
        let mut sys = System::new_mixed(cfg, &specs);
        let r = sys.run();
        assert_eq!(r.per_core.len(), 3);
        // All three kernels committed work.
        for s in &r.per_core {
            assert!(s.instructions > 100);
        }
    }

    #[test]
    #[should_panic(expected = "one workload spec per core")]
    fn mixed_arity_checked() {
        let cfg = sys_cfg(2, CoreConfig::banked(2));
        let specs: Vec<(virec_workloads::WorkloadCtor, u64)> = vec![(kernels::spatter::gather, 64)];
        let _ = System::new_mixed(cfg, &specs);
    }

    #[test]
    fn mixed_arity_is_a_typed_error() {
        let cfg = sys_cfg(2, CoreConfig::banked(2));
        let specs: Vec<(virec_workloads::WorkloadCtor, u64)> = vec![(kernels::spatter::gather, 64)];
        let err = System::try_new_mixed(cfg, &specs).err().expect("must fail");
        assert_eq!(
            err,
            SystemConfigError::WorkloadArity {
                expected: 2,
                got: 1
            }
        );
        let sim: SimError = err.into();
        assert_eq!(sim.kind(), "config");
        assert!(sim.to_string().contains("one workload spec per core"));
    }

    #[test]
    fn core_config_arity_is_a_typed_error() {
        let cfg = sys_cfg(2, CoreConfig::banked(2));
        let specs: Vec<(virec_workloads::WorkloadCtor, u64)> = vec![
            (kernels::spatter::gather, 64),
            (kernels::spatter::gather, 64),
        ];
        let err = System::try_new_heterogeneous(cfg, &[CoreConfig::banked(2)], &specs)
            .err()
            .expect("must fail");
        assert_eq!(
            err,
            SystemConfigError::CoreArity {
                expected: 2,
                got: 1
            }
        );
        assert!(err.to_string().contains("one core config per core"));
    }

    #[test]
    fn zero_cores_is_a_typed_error() {
        let cfg = sys_cfg(0, CoreConfig::banked(2));
        let err = System::try_new(cfg, kernels::spatter::gather, 64)
            .err()
            .expect("must fail");
        assert_eq!(err, SystemConfigError::ZeroCores);
        let sim: SimError = err.into();
        assert_eq!(sim.kind(), "config");
    }

    #[test]
    fn mean_core_ipc_of_an_empty_result_is_zero() {
        let r = SystemResult {
            cycles: 100,
            per_core: Vec::new(),
            fabric: FabricStats::default(),
        };
        assert_eq!(r.mean_core_ipc(), 0.0);
    }

    #[test]
    fn try_new_builds_a_working_system() {
        let cfg = sys_cfg(2, CoreConfig::banked(2));
        let mut sys = System::try_new(cfg, kernels::spatter::gather, 64).expect("valid shape");
        let r = sys.try_run().expect("runs");
        assert_eq!(r.per_core.len(), 2);
    }

    #[test]
    fn heterogeneous_engines_share_the_fabric() {
        // A banked core and a ViReC core contend for the same DRAM; both
        // must verify, and both make progress.
        let cfg = sys_cfg(2, CoreConfig::banked(4));
        let cores = [CoreConfig::banked(4), CoreConfig::virec(8, 52)];
        let specs: Vec<(virec_workloads::WorkloadCtor, u64)> = vec![
            (kernels::spatter::gather, 256),
            (kernels::spatter::gather, 256),
        ];
        let mut sys = System::new_heterogeneous(cfg, &cores, &specs);
        let r = sys.run();
        assert!(r.per_core[0].instructions > 1000);
        assert!(r.per_core[1].instructions > 1000);
        // The ViReC core ran 8 threads, the banked core 4.
        assert!(r.per_core[1].context_switches > r.per_core[0].context_switches / 4);
    }

    #[test]
    fn budget_derives_from_core_configs_and_is_typed() {
        let mut core = CoreConfig::banked(4);
        core.max_cycles = 3_000; // far too small for 512 elements
        let cfg = sys_cfg(2, core);
        let mut sys = System::new(cfg, kernels::spatter::gather, 512);
        assert_eq!(sys.cycle_budget(), 3_000);
        let err = sys.try_run().unwrap_err();
        match &err {
            SimError::CycleBudgetExceeded { budget, diag } => {
                assert_eq!(*budget, 3_000);
                assert!(!diag.workload.is_empty());
            }
            other => panic!("expected CycleBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn heterogeneous_budget_takes_the_max() {
        let mut small = CoreConfig::banked(2);
        small.max_cycles = 1_000;
        let big = CoreConfig::virec(4, 32); // preset budget 200M
        let cfg = sys_cfg(2, small);
        let specs: Vec<(virec_workloads::WorkloadCtor, u64)> = vec![
            (kernels::spatter::gather, 64),
            (kernels::spatter::gather, 64),
        ];
        let mut sys = System::new_heterogeneous(cfg, &[small, big], &specs);
        assert_eq!(sys.cycle_budget(), big.max_cycles);
        // The generous budget lets both cores finish despite `small`'s cap.
        let r = sys.try_run().expect("system completes under max budget");
        assert!(r.cycles > 0);
    }

    #[test]
    fn contention_slows_cores_down() {
        // Per-core IPC must drop as more cores share the fabric.
        let run = |ncores: usize| {
            let cfg = sys_cfg(ncores, CoreConfig::banked(4));
            System::new(cfg, kernels::spatter::gather, 512).run()
        };
        let one = run(1);
        let four = run(4);
        let ipc1 = one.per_core[0].ipc();
        let ipc4 = four.per_core[0].ipc();
        assert!(
            ipc4 < ipc1,
            "core 0 IPC should drop under contention: {ipc4} vs {ipc1}"
        );
    }
}
