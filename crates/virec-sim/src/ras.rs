//! RAS (Reliability / Availability / Serviceability) layer: patrol
//! scrubbing, predictive sparing, and degraded-mode bookkeeping.
//!
//! PRs 5–6 made the machine survive **transient** upsets (SEC-DED
//! correction, checkpoint replay, core quarantine). This module handles
//! the faults that do not go away: intermittent duty-cycled flips and
//! permanent stuck-at cells, over the same six injection sites.
//!
//! Three mechanisms compose:
//!
//! * A **patrol scrubber** ([`Scrubber`]) walks every protected word on a
//!   configurable cycle budget. Scrub reads are *real* fabric requests
//!   ([`virec_mem::Fabric::submit_scrub`]) that contend with demand
//!   traffic — repair bandwidth occupies cycles in the latency-bearing
//!   components, it is not free.
//! * A **CE tracker** ([`CeTracker`]) keeps a leaky-bucket counter per
//!   physical region (DRAM row or CAM way). Corrected errors — observed
//!   on demand accesses or by the patrol — fill the bucket; time leaks
//!   it. Crossing the threshold predictively retires the region *before*
//!   a second cell failure turns correctable into silent.
//! * **Spare pools** back the retirement: DRAM rows remap through
//!   [`virec_mem::RemapTable`], CAM ways mask-and-relocate inside the
//!   VRMU tag store. When the pools run dry the region is *fenced* —
//!   taken out of service with no replacement — and the machine keeps
//!   running with less capacity instead of dying.
//!
//! The runner owns the per-run [`RasStats`] and the retirement log
//! ([`RetiredRegion`]); both live *outside* the checkpoint ring, because a
//! physical repair survives an architectural rollback.

use std::collections::HashMap;

/// Knobs for the RAS layer. `Copy` so campaign options can embed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RasConfig {
    /// Cycles between patrol scrub reads (one cache line per wakeup).
    /// 0 disables the scrubber.
    pub scrub_interval: u64,
    /// Leaky-bucket level at which a region is predictively retired.
    pub ce_threshold: u32,
    /// Cycles per unit of bucket leakage (0 = no leak).
    pub ce_leak_interval: u64,
    /// Spare DRAM rows available for remapping (whole machine).
    pub spare_rows: u32,
    /// Spare CAM ways provisioned per VRMU tag store.
    pub spare_ways: u32,
    /// Cycles a serve slot spends migrating data after a retirement
    /// (the checkpoint/offload copy, modeled as lost slot capacity).
    pub repair_cycles: u64,
}

impl Default for RasConfig {
    fn default() -> RasConfig {
        RasConfig {
            scrub_interval: 8192,
            ce_threshold: 3,
            ce_leak_interval: 100_000,
            spare_rows: 4,
            spare_ways: 2,
            repair_cycles: 20_000,
        }
    }
}

/// Per-run RAS counters, carried in
/// [`crate::runner::RunResult`] and journaled only when non-empty
/// (mirroring [`crate::ecc::EccStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RasStats {
    /// Patrol scrub reads issued into the fabric.
    pub scrub_reads: u64,
    /// Correctable-error observations fed to the CE tracker (demand
    /// corrections and patrol hits on a faulty row).
    pub ce_observations: u64,
    /// Regions retired by the CE tracker before any uncorrectable error.
    pub predictive_retirements: u64,
    /// Regions retired in response to a detected-uncorrectable error
    /// (restore-then-retire).
    pub demand_retirements: u64,
    /// Regions fenced with no spare available (capacity lost).
    pub degraded_regions: u64,
    /// Cache lines copied while migrating retired regions onto spares.
    pub migrated_lines: u64,
    /// Fault assertions dropped because their region was already retired
    /// (the cells are out of service).
    pub suppressed_assertions: u64,
}

impl RasStats {
    /// True when the run had no RAS activity at all.
    pub fn is_empty(&self) -> bool {
        *self == RasStats::default()
    }
}

/// One physical repair, recorded so the runner can re-apply it after a
/// checkpoint restore (the rollback rewinds architectural state, not the
/// remap table or the way mask — but restores clone the *machine*, so the
/// runner replays the log onto the restored clone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetiredRegion {
    /// A VRMU tag-store way was masked (`spared`: a spare way was
    /// activated to replace it).
    Way {
        /// Physical index of the masked way.
        idx: usize,
        /// Whether a spare way was activated.
        spared: bool,
    },
    /// A DRAM row was retired through the remap table (`spared`: remapped
    /// onto a spare row rather than fenced).
    Row {
        /// Any byte address inside the retired row.
        addr: u64,
        /// Whether a spare row was consumed.
        spared: bool,
    },
    /// A mesh NoC link was taken out of service (routed around, or fenced
    /// to half bandwidth when no route would survive — the fabric
    /// re-decides deterministically on replay).
    Link {
        /// Link id within the mesh's directed-link population.
        link: usize,
    },
}

/// Leaky-bucket correctable-error counters, one bucket per physical
/// region key (a packed DRAM row id or a CAM way id).
///
/// The bucket fills by one per observation and leaks one unit per
/// `leak_interval` cycles; [`CeTracker::observe`] reports `true` exactly
/// when the post-increment level reaches the threshold — never below it.
/// The map is only ever looked up by key (never iterated), so `HashMap`
/// ordering cannot leak into simulation results.
#[derive(Clone, Debug)]
pub struct CeTracker {
    threshold: u32,
    leak_interval: u64,
    buckets: HashMap<u64, Bucket>,
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    level: u32,
    last_leak: u64,
}

impl CeTracker {
    /// A tracker with the given threshold and leak rate.
    pub fn new(threshold: u32, leak_interval: u64) -> CeTracker {
        CeTracker {
            threshold: threshold.max(1),
            leak_interval,
            buckets: HashMap::new(),
        }
    }

    /// Records one corrected error against `key` at `now`; returns `true`
    /// when the region has crossed the retirement threshold.
    pub fn observe(&mut self, key: u64, now: u64) -> bool {
        let b = self.buckets.entry(key).or_insert(Bucket {
            level: 0,
            last_leak: now,
        });
        if self.leak_interval > 0 && now > b.last_leak {
            let periods = (now - b.last_leak) / self.leak_interval;
            b.level = b
                .level
                .saturating_sub(periods.min(u64::from(u32::MAX)) as u32);
            b.last_leak += periods * self.leak_interval;
        }
        b.level += 1;
        b.level >= self.threshold
    }

    /// Drops the bucket for a retired region.
    pub fn clear(&mut self, key: u64) {
        self.buckets.remove(&key);
    }

    /// Current level of a region's bucket (0 when untracked).
    pub fn level(&self, key: u64) -> u32 {
        self.buckets.get(&key).map_or(0, |b| b.level)
    }
}

/// The patrol scrubber's walk state: a cursor over the protected address
/// ranges, advanced one cache line per wakeup.
#[derive(Clone, Debug)]
pub struct Scrubber {
    ranges: Vec<(u64, u64)>,
    range: usize,
    offset: u64,
}

impl Scrubber {
    /// A scrubber patrolling the given `(base, bytes)` ranges. Ranges of
    /// zero length are skipped; with no usable range the scrubber is inert.
    pub fn new(ranges: Vec<(u64, u64)>) -> Scrubber {
        let ranges: Vec<(u64, u64)> = ranges.into_iter().filter(|&(_, len)| len > 0).collect();
        Scrubber {
            ranges,
            range: 0,
            offset: 0,
        }
    }

    /// The next line address to patrol, advancing the cursor. `None` when
    /// there is nothing to walk.
    pub fn next_line(&mut self) -> Option<u64> {
        let &(base, len) = self.ranges.get(self.range)?;
        let addr = base + self.offset;
        self.offset += virec_mem::LINE_BYTES;
        if self.offset >= len {
            self.offset = 0;
            self.range = (self.range + 1) % self.ranges.len();
        }
        Some(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_fires_exactly_at_threshold() {
        let mut t = CeTracker::new(3, 0);
        assert!(!t.observe(7, 100));
        assert!(!t.observe(7, 200));
        assert!(t.observe(7, 300), "third observation crosses threshold 3");
        assert_eq!(t.level(7), 3);
        t.clear(7);
        assert_eq!(t.level(7), 0);
    }

    #[test]
    fn bucket_leaks_over_time() {
        let mut t = CeTracker::new(3, 1000);
        assert!(!t.observe(1, 0));
        assert!(!t.observe(1, 10));
        // Two full leak intervals drain both units; the bucket restarts.
        assert!(!t.observe(1, 2500));
        assert!(!t.observe(1, 2600));
        assert!(t.observe(1, 2700));
    }

    #[test]
    fn distinct_regions_do_not_share_buckets() {
        let mut t = CeTracker::new(2, 0);
        assert!(!t.observe(1, 0));
        assert!(!t.observe(2, 0));
        assert!(t.observe(1, 1));
    }

    #[test]
    fn scrubber_walks_ranges_round_robin() {
        let mut s = Scrubber::new(vec![(0, 128), (4096, 64)]);
        assert_eq!(s.next_line(), Some(0));
        assert_eq!(s.next_line(), Some(64));
        assert_eq!(s.next_line(), Some(4096));
        assert_eq!(s.next_line(), Some(0), "wraps back to the first range");
    }

    #[test]
    fn empty_scrubber_is_inert() {
        let mut s = Scrubber::new(vec![(0, 0)]);
        assert_eq!(s.next_line(), None);
    }

    #[test]
    fn stats_emptiness() {
        assert!(RasStats::default().is_empty());
        let s = RasStats {
            scrub_reads: 1,
            ..RasStats::default()
        };
        assert!(!s.is_empty());
    }
}
