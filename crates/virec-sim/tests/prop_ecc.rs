//! Property tests for the (72,64) SEC-DED codec and the parity bit: over
//! random 64-bit words, every single-bit flip must be corrected back to the
//! original data, every double-bit flip must be detected and never
//! miscorrected, and parity must flag every odd-weight error pattern.

use proptest::prelude::*;
use virec_sim::ecc::{parity_bit, secded_decode, secded_encode, SecDedOutcome, SECDED_CHECK_BITS};

/// The data word reconstructed by the decoder, or `None` when the outcome
/// carries no data correction (check-bit error or detected double error).
fn corrected_data(outcome: SecDedOutcome, raw: u64) -> Option<u64> {
    match outcome {
        SecDedOutcome::Clean | SecDedOutcome::CorrectedCheck => Some(raw),
        SecDedOutcome::CorrectedData(w) => Some(w),
        SecDedOutcome::DoubleError => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn clean_words_decode_clean(data in any::<u64>()) {
        let check = secded_encode(data);
        prop_assert_eq!(secded_decode(data, check), SecDedOutcome::Clean);
    }

    #[test]
    fn every_single_bit_flip_is_corrected(data in any::<u64>()) {
        let check = secded_encode(data);
        // Flip each of the 64 data bits in turn.
        for bit in 0..64 {
            let outcome = secded_decode(data ^ (1u64 << bit), check);
            prop_assert_eq!(
                outcome,
                SecDedOutcome::CorrectedData(data),
                "data bit {} of {:#018x} must correct",
                bit,
                data
            );
        }
        // Flip each of the 8 check bits in turn: the data is untouched and
        // the decoder must say so rather than "repair" a healthy word.
        for bit in 0..SECDED_CHECK_BITS {
            let outcome = secded_decode(data, check ^ (1u8 << bit));
            prop_assert_eq!(
                outcome,
                SecDedOutcome::CorrectedCheck,
                "check bit {} of {:#018x} must correct",
                bit,
                data
            );
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected_never_miscorrected(data in any::<u64>()) {
        let check = secded_encode(data);
        let total = 64 + SECDED_CHECK_BITS as usize; // 72 codeword bits
        for a in 0..total {
            for b in (a + 1)..total {
                let mut d = data;
                let mut c = check;
                for bit in [a, b] {
                    if bit < 64 {
                        d ^= 1u64 << bit;
                    } else {
                        c ^= 1u8 << (bit - 64);
                    }
                }
                let outcome = secded_decode(d, c);
                prop_assert_eq!(
                    outcome,
                    SecDedOutcome::DoubleError,
                    "flips ({}, {}) of {:#018x} must detect as a double error",
                    a,
                    b,
                    data
                );
                // Detection alone is not enough: the decoder must never hand
                // back a "corrected" word for an uncorrectable pattern.
                prop_assert_eq!(corrected_data(outcome, d), None);
            }
        }
    }

    #[test]
    fn parity_detects_every_odd_weight_flip(data in any::<u64>(), pattern in any::<u64>()) {
        let p = parity_bit(data);
        let corrupted = data ^ pattern;
        if pattern.count_ones() % 2 == 1 {
            prop_assert_ne!(
                parity_bit(corrupted), p,
                "odd-weight pattern {:#018x} must flip the parity of {:#018x}",
                pattern, data
            );
        } else {
            // Even-weight patterns (including no flip) are the documented
            // escape: parity cannot see them.
            prop_assert_eq!(parity_bit(corrupted), p);
        }
    }
}
