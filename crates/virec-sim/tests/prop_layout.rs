//! Property tests for the per-core memory carve-up the serving layer
//! depends on: for any core count the dispatcher may run, each core's
//! offload register region and data segment must stay inside that core's
//! span, never overlap any other core's windows, and fit inside
//! `layout::mem_size(ncores)`. A violation here would let one task's
//! dispatch image (or its fault injections) corrupt a neighbour mid-run.

use proptest::prelude::*;
use virec_core::RegRegion;
use virec_workloads::layout::{self, CORE_SPAN};
use virec_workloads::Layout;

/// The address windows core `i` may touch: its offload register region
/// (sized for `nthreads`) and its data segment.
fn windows(core: usize, nthreads: usize) -> [(u64, u64); 2] {
    let l = Layout::for_core(core);
    let region = RegRegion::new(l.region_base, nthreads);
    [
        (region.base, region.end()),
        (l.data_base, l.data_base + l.data_size),
    ]
}

fn disjoint(a: (u64, u64), b: (u64, u64)) -> bool {
    a.1 <= b.0 || b.1 <= a.0
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn core_windows_stay_inside_their_span(
        core in 0usize..16,
        nthreads in 1usize..=16,
    ) {
        let base = core as u64 * CORE_SPAN;
        for (lo, hi) in windows(core, nthreads) {
            prop_assert!(lo < hi);
            prop_assert!(lo >= base, "window {lo:#x} below core base {base:#x}");
            prop_assert!(
                hi <= base + CORE_SPAN,
                "window end {hi:#x} past core span end {:#x}",
                base + CORE_SPAN
            );
        }
        // The register region must never spill into the data segment the
        // kernels (and the serve-layer fault injector) write.
        let [region, data] = windows(core, nthreads);
        prop_assert!(region.1 <= data.0);
    }

    #[test]
    fn no_two_cores_share_any_window(
        ncores in 1usize..=16,
        nthreads in 1usize..=16,
    ) {
        for a in 0..ncores {
            for b in (a + 1)..ncores {
                for wa in windows(a, nthreads) {
                    for wb in windows(b, nthreads) {
                        prop_assert!(
                            disjoint(wa, wb),
                            "cores {a} and {b} overlap: {wa:x?} vs {wb:x?}"
                        );
                    }
                }
            }
            // Code segments are disjoint from every data window too (they
            // live in a separate high range, one per core).
            let ca = Layout::for_core(a).code_base;
            for b in 0..ncores {
                if a != b {
                    prop_assert_ne!(ca, Layout::for_core(b).code_base);
                }
            }
        }
    }

    #[test]
    fn mem_size_covers_every_core(ncores in 1usize..=16) {
        let size = layout::mem_size(ncores) as u64;
        for core in 0..ncores {
            for (_, hi) in windows(core, 16) {
                prop_assert!(
                    hi <= size,
                    "core {core} window ends at {hi:#x} but mem_size is {size:#x}"
                );
            }
        }
    }
}
