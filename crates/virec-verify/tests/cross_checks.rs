//! End-to-end cross-validation of static analysis against the timing
//! models, over the entire workload suite:
//!
//! * the recorded prefetch oracle equals the traced per-quantum used sets,
//!   and every quantum's demand set is contained in static liveness;
//! * the ViReC engine's LRC commit-bit state after §5.1 compaction
//!   matches the static rollback-window bound;
//! * dynamic future-use sets from golden-interpreter traces are contained
//!   in static live-in at every executed PC;
//! * a purely liveness-derived oracle schedule can drive a prefetch-exact
//!   core to a correct (golden-verified) run.

use virec_core::CoreConfig;
use virec_isa::dataflow::ALL_REGS;
use virec_sim::{try_run_single, try_run_single_traced, RunOptions};
use virec_verify::{check_liveness_on_golden_trace, check_lrc, StaticOracle};
use virec_workloads::{suite, Layout};

const N: u64 = 256;
const NTHREADS: usize = 4;

#[test]
fn recorded_oracle_matches_trace_and_demand_is_live() {
    for w in suite(N, Layout::for_core(0)) {
        let oracle = StaticOracle::build(w.program(), ALL_REGS).expect(w.name);
        let opts = RunOptions {
            record_oracle: true,
            ..RunOptions::default()
        };
        let (result, trace) =
            try_run_single_traced(CoreConfig::banked(NTHREADS), &w, &opts).expect(w.name);
        let check = oracle
            .cross_check(&trace, Some(&result.oracle))
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(check.quanta > 0, "{}: no quanta traced", w.name);
    }
}

#[test]
fn virec_demand_is_live_too() {
    // The demand ⊆ live-in invariant is engine-independent; check it on
    // the ViReC core as well (quantum boundaries differ from banked).
    for w in suite(N, Layout::for_core(0)) {
        let oracle = StaticOracle::build(w.program(), ALL_REGS).expect(w.name);
        let (_, trace) =
            try_run_single_traced(CoreConfig::virec(NTHREADS, 24), &w, &RunOptions::default())
                .expect(w.name);
        oracle
            .cross_check(&trace, None)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn lrc_live_bits_respect_static_liveness() {
    for w in suite(N, Layout::for_core(0)) {
        let report = check_lrc(&w, NTHREADS, 24).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(report.sampled > 0, "{}: no live-bit samples", w.name);
    }
}

#[test]
fn golden_future_use_is_contained_in_liveness() {
    for w in suite(64, Layout::for_core(0)) {
        let report = check_liveness_on_golden_trace(&w, NTHREADS)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(report.steps_checked > 0, "{}: empty golden trace", w.name);
    }
}

#[test]
fn liveness_derived_schedule_drives_prefetch_exact_correctly() {
    // Derive oracle contexts purely from static liveness (no recording run)
    // and replay them through the prefetch-exact engine. Quantum boundaries
    // differ between the banked trace and the replay, so correctness comes
    // from the demand-fill fallback — which the default golden verification
    // checks bit-for-bit.
    for w in suite(N, Layout::for_core(0)) {
        let oracle = StaticOracle::build(w.program(), ALL_REGS).expect(w.name);
        let (_, trace) =
            try_run_single_traced(CoreConfig::banked(NTHREADS), &w, &RunOptions::default())
                .expect(w.name);
        let derived = oracle.derive_schedule(&trace, NTHREADS);
        let opts = RunOptions {
            oracle: derived,
            ..RunOptions::default()
        };
        let result = try_run_single(CoreConfig::prefetch_exact(NTHREADS, 12), &w, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(result.stats.instructions > 0, "{}", w.name);
    }
}
