//! Property: translation validation accepts everything the compiler
//! emits, and what it accepts is architecturally right.
//!
//! For random structured IR functions (bounded counted loops, masked
//! in-bounds loads/stores against a data segment) compiled at random
//! register budgets with both allocation strategies:
//!
//! * the TV pass reports zero violations and runs its concrete
//!   cross-check (so the machine program provably matches the
//!   pre-allocation IR on the seeded inputs);
//! * the lint gate is clean under the compiled ABI configuration;
//! * an explicit differential run — IR interpreter vs machine
//!   interpreter on a second seeded input — returns the same value.

use proptest::prelude::*;
use virec_cc::ir::{interpret, BinOp, Cmp, Function, Operand, Stmt};
use virec_cc::{compile_with, AllocStrategy};
use virec_isa::dataflow::ALL_REGS;
use virec_isa::{ExecOutcome, FlatMem, Interpreter, Reg, ThreadCtx};
use virec_verify::{lint_program, validate, LintConfig, LintKind, TvCase};

/// Number of 64-bit words in the seeded data segment at `DATA_BASE`.
const DATA_WORDS: u64 = 16;
const DATA_BASE: u64 = 0x1000;
const FRAME_BASE: u64 = 0x8000;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let s = &mut self.0;
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Builder state: which temps hold defined values (usable as operands)
/// and which are protected from redefinition — live loop counters (so
/// every loop terminates) and the params (so `t0` stays the data base).
struct Gen {
    rng: Rng,
    next_temp: u32,
    defined: Vec<u32>,
    counters: Vec<u32>,
}

impl Gen {
    fn fresh(&mut self) -> u32 {
        let t = self.next_temp;
        self.next_temp += 1;
        t
    }

    fn any_defined(&mut self) -> u32 {
        self.defined[self.rng.pick(self.defined.len() as u64) as usize]
    }

    fn operand(&mut self) -> Operand {
        if self.rng.pick(3) == 0 {
            Operand::Const((self.rng.next() % 256) as i64)
        } else {
            Operand::Temp(self.any_defined())
        }
    }

    /// A temp guaranteed to hold an index `< DATA_WORDS`: a fresh `And`
    /// mask of any defined value.
    fn masked_index(&mut self, out: &mut Vec<Stmt>) -> u32 {
        let t = self.fresh();
        out.push(Stmt::def_bin(
            t,
            BinOp::And,
            Operand::Temp(self.any_defined()),
            Operand::Const(DATA_WORDS as i64 - 1),
        ));
        self.defined.push(t);
        t
    }

    fn stmts(&mut self, budget: usize, depth: usize, out: &mut Vec<Stmt>) {
        for _ in 0..budget {
            match self.rng.pick(if depth < 2 { 6 } else { 5 }) {
                0 => {
                    let t = self.fresh();
                    out.push(Stmt::def_const(t, (self.rng.next() % 1024) as i64));
                    self.defined.push(t);
                }
                1 | 2 => {
                    // Redefining an existing non-counter temp exercises
                    // the allocator's live-range splitting at joins.
                    let dst = if self.rng.pick(2) == 0 {
                        let mut t = self.any_defined();
                        if self.counters.contains(&t) {
                            t = self.fresh();
                        }
                        t
                    } else {
                        self.fresh()
                    };
                    let op = [
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::And,
                        BinOp::Or,
                        BinOp::Xor,
                    ][self.rng.pick(6) as usize];
                    let a = Operand::Temp(self.any_defined());
                    let b = self.operand();
                    out.push(Stmt::def_bin(dst, op, a, b));
                    if !self.defined.contains(&dst) {
                        self.defined.push(dst);
                    }
                }
                3 => {
                    let idx = self.masked_index(out);
                    let dst = self.fresh();
                    out.push(Stmt::Load {
                        dst,
                        base: 0,
                        index: Operand::Temp(idx),
                    });
                    self.defined.push(dst);
                }
                4 => {
                    let idx = self.masked_index(out);
                    out.push(Stmt::Store {
                        src: Operand::Temp(self.any_defined()),
                        base: 0,
                        index: Operand::Temp(idx),
                    });
                }
                _ => {
                    // A bounded counted loop with a protected counter.
                    let c = self.fresh();
                    let trip = 1 + self.rng.pick(4) as i64;
                    out.push(Stmt::def_const(c, 0));
                    self.defined.push(c);
                    self.counters.push(c);
                    let mut body = Vec::new();
                    let inner = 1 + self.rng.pick(3) as usize;
                    // Temps first defined in the body are not defined on
                    // the zero-trip CFG path, so they must not be visible
                    // as operands after the loop (the lint gate's
                    // may-analysis would rightly flag such uses).
                    let scope = self.defined.len();
                    self.stmts(inner, depth + 1, &mut body);
                    self.defined.truncate(scope);
                    body.push(Stmt::def_bin(
                        c,
                        BinOp::Add,
                        Operand::Temp(c),
                        Operand::Const(1),
                    ));
                    out.push(Stmt::While {
                        cond: (Operand::Temp(c), Cmp::Lt, Operand::Const(trip)),
                        body,
                    });
                    self.counters.pop();
                }
            }
        }
    }
}

/// A random terminating function over two params: `t0` is the data-segment
/// base, `t1` an arbitrary seed value.
fn random_function(seed: u64) -> Function {
    let mut g = Gen {
        rng: Rng(seed | 1),
        next_temp: 2,
        defined: vec![0, 1],
        counters: vec![0, 1],
    };
    let mut body = Vec::new();
    let n = 2 + g.rng.pick(7) as usize;
    g.stmts(n, 0, &mut body);
    let ret = g.any_defined();
    body.push(Stmt::Return {
        value: Operand::Temp(ret),
    });
    Function {
        name: "prop_tv".into(),
        params: vec![0, 1],
        body,
    }
}

fn seeded_case(seed: u64) -> TvCase {
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let mut mem = Vec::new();
    for i in 0..DATA_WORDS {
        mem.push((DATA_BASE + i * 8, rng.next()));
    }
    TvCase {
        args: vec![DATA_BASE, rng.next() % 4096],
        mem,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn random_ir_validates_lints_and_matches_the_interpreter(
        seed in any::<u64>(),
        budget in 1usize..=17,
    ) {
        let f = random_function(seed);
        let case = seeded_case(seed);
        let extra = seeded_case(seed.rotate_left(17) ^ 0xdead_beef);

        for strategy in [AllocStrategy::GraphColor, AllocStrategy::LinearScan] {
            let c = compile_with(&f, budget, strategy).expect("in-range budget");

            // 1. Translation validation, including the concrete pass.
            let report = validate("prop_tv", &f, &c, std::slice::from_ref(&case));
            prop_assert!(
                report.is_valid(),
                "budget {budget}/{}: TV violations:\n{}\nIR: {:#?}",
                strategy.name(),
                report.violations.iter().map(|v| v.to_string())
                    .collect::<Vec<_>>().join("\n"),
                f.body,
            );
            prop_assert_eq!(report.cases_run, 1);

            // 2. The lint gate under the compiled ABI.
            let mut initial = 1u32 << c.frame_reg.index();
            for r in &c.param_regs {
                initial |= 1 << r.index();
            }
            // Random IR contains genuinely dead defs (the compiler does no
            // DCE), so dead-store findings are generator noise here; every
            // other lint kind would be a real compiler bug.
            let diags: Vec<_> = lint_program(c.program.instrs(), &LintConfig {
                initial_regs: initial,
                reserved: 1 << c.frame_reg.index(),
                halt_live: ALL_REGS,
            })
            .into_iter()
            .filter(|d| d.kind != LintKind::DeadStore)
            .collect();
            prop_assert!(
                diags.is_empty(),
                "budget {budget}/{}: lint diagnostics:\n{}",
                strategy.name(),
                diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n"),
            );

            // 3. Explicit differential run on an input TV never saw.
            let mut ir_mem = FlatMem::new(0, 0x10_000);
            let mut m_mem = FlatMem::new(0, 0x10_000);
            for &(a, v) in &extra.mem {
                ir_mem.write_u64(a, v);
                m_mem.write_u64(a, v);
            }
            let want = interpret(&f, &extra.args, &mut ir_mem, 1_000_000).value;
            let mut ctx = ThreadCtx::new();
            for (i, &a) in extra.args.iter().enumerate() {
                ctx.set(Reg::new(i as u8), a);
            }
            ctx.set(c.frame_reg, FRAME_BASE);
            let out = Interpreter::new(&c.program, &mut m_mem).run(&mut ctx, 1_000_000);
            prop_assert!(matches!(out, ExecOutcome::Halted { .. }));
            prop_assert_eq!(ctx.get(Reg::new(0)), want);
        }
    }
}
