//! Property: the maybe-uninit lint is sound *and* complete against the
//! golden interpreter's poison tracking (`uninit-poison` feature of
//! `virec-isa`).
//!
//! For random programs (no memory ops, all branch targets in range) and
//! random initial-register sets:
//!
//! * **soundness** — if the linter reports no [`LintKind::MaybeUninitRead`],
//!   execution from a context where exactly the initial registers are
//!   written never reads a poisoned (never-written) register or poisoned
//!   flags;
//! * **completeness** — every dynamic poison read happens at a PC the
//!   linter flagged: the executed path is one of the CFG paths the
//!   may-analysis unions over, so the entry pseudo-definition of the
//!   unwritten register must reach that PC statically.

use proptest::prelude::*;
use virec_isa::instr::{AluOp, Operand2};
use virec_isa::{Cond, FlatMem, Instr, Interpreter, Program, Reg, ThreadCtx};
use virec_verify::{lint_program, LintConfig, LintKind};

/// Pool of registers the generator draws from.
const POOL: u8 = 8;

/// Deterministic xorshift so each proptest case expands a seed into a
/// whole program.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let s = &mut self.0;
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    fn reg(&mut self) -> Reg {
        Reg::new((self.next() % POOL as u64) as u8)
    }

    fn operand2(&mut self) -> Operand2 {
        if self.next().is_multiple_of(2) {
            Operand2::Reg(self.reg())
        } else {
            Operand2::Imm((self.next() % 64) as i64)
        }
    }
}

/// A random program of `len` instructions plus a final `halt`; every branch
/// target is in range (possibly the `halt` itself), so the CFG always
/// builds.
fn random_program(seed: u64, len: usize) -> Program {
    let mut rng = Rng(seed | 1);
    let mut instrs = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let target = (rng.next() % (len as u64 + 1)) as u32;
        let i = match rng.next() % 8 {
            0 => Instr::MovImm {
                dst: rng.reg(),
                imm: (rng.next() % 1024) as i64,
            },
            1 => Instr::Alu {
                op: [AluOp::Add, AluOp::Sub, AluOp::Eor][(rng.next() % 3) as usize],
                dst: rng.reg(),
                src: rng.reg(),
                rhs: rng.operand2(),
            },
            2 => Instr::Cmp {
                src: rng.reg(),
                rhs: rng.operand2(),
            },
            3 => Instr::Csel {
                dst: rng.reg(),
                a: rng.reg(),
                b: rng.reg(),
                cond: [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge][(rng.next() % 4) as usize],
            },
            4 => Instr::Bcc {
                cond: [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge][(rng.next() % 4) as usize],
                target,
            },
            5 => Instr::Cbz {
                src: rng.reg(),
                target,
            },
            6 => Instr::Cbnz {
                src: rng.reg(),
                target,
            },
            _ => Instr::Nop,
        };
        instrs.push(i);
    }
    instrs.push(Instr::Halt);
    Program::new("prop", instrs)
}

/// A random subset of the register pool, biased toward fully-initialized
/// contexts so the soundness direction gets real coverage.
fn random_initial(seed: u64) -> u32 {
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    match rng.next() % 3 {
        0 => (1u32 << POOL) - 1,
        _ => (rng.next() as u32) & ((1u32 << POOL) - 1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn lint_clean_programs_never_read_poison(seed in any::<u64>(), len in 1usize..24) {
        let program = random_program(seed, len);
        let initial = random_initial(seed);
        let diags = lint_program(
            program.instrs(),
            &LintConfig {
                initial_regs: initial,
                reserved: 0,
                ..LintConfig::default()
            },
        );
        let flagged: Vec<usize> = diags
            .iter()
            .filter(|d| d.kind == LintKind::MaybeUninitRead)
            .filter_map(|d| d.pc)
            .collect();

        // Execute from a context where exactly `initial` is written.
        // Infinite loops are fine: any poison read in any prefix counts.
        let mut mem = FlatMem::new(0, 64);
        let mut ctx = ThreadCtx::new();
        for r in 0..POOL {
            if initial & (1 << r) != 0 {
                ctx.set(Reg::new(r), seed.wrapping_mul(r as u64 + 3));
            }
        }
        Interpreter::new(&program, &mut mem).run(&mut ctx, 10_000);

        let listing = || {
            program
                .instrs()
                .iter()
                .enumerate()
                .map(|(pc, i)| format!("{pc:3}: {i}"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        if flagged.is_empty() {
            // Soundness: no diagnostic => no dynamic poison read.
            prop_assert!(
                ctx.poison_reads.is_empty(),
                "lint-clean program read poison at {:?}\n{}",
                ctx.poison_reads,
                listing(),
            );
        }
        // Completeness: every dynamic poison read was statically flagged.
        for (pc, bits) in &ctx.poison_reads {
            prop_assert!(
                flagged.contains(&(*pc as usize)),
                "poison read of {bits:#x} at pc {pc} not flagged (flagged: {flagged:?})\n{}",
                listing(),
            );
        }
    }
}
