//! The ISA lint gate: typed diagnostics from CFG + dataflow analysis.
//!
//! A program that lints clean is structurally well-formed (every branch
//! lands on an instruction, every path reaches `halt`, all code is
//! reachable, loops are reducible and contiguous) and dataflow-clean (no
//! read of a maybe-uninitialized register, no dead register store, no
//! clobber of a reserved register). The maybe-uninitialized lint is proven
//! sound against the golden interpreter's poison tracking by a property
//! test (`uninit-poison` feature of `virec-isa`).

use virec_isa::cfg::{Cfg, CfgError};
use virec_isa::dataflow::{
    def_mask, regs_of_mask, use_mask, Liveness, ReachingDefs, ALL_REGS, FLAGS_BIT,
};
use virec_isa::Instr;

/// What the linter assumes about the program's environment.
#[derive(Clone, Copy, Debug)]
pub struct LintConfig {
    /// Registers (optionally plus [`FLAGS_BIT`]) holding defined values at
    /// entry: ABI parameters, per-thread context registers, the frame
    /// pointer. Reads reachable by the entry value of any *other* register
    /// are maybe-uninitialized.
    pub initial_regs: u32,
    /// Registers the program must never write (e.g. the compiler's
    /// reserved frame pointer).
    pub reserved: u32,
    /// Registers treated as read by `halt`. The simulator diffs the full
    /// final register file against the golden interpreter, so the default
    /// is [`ALL_REGS`] — which keeps the dead-store lint from flagging
    /// values whose only "use" is that final comparison.
    pub halt_live: u32,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            initial_regs: ALL_REGS,
            reserved: 0,
            halt_live: ALL_REGS,
        }
    }
}

/// The category of a lint finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// CFG construction failed: empty program or out-of-bounds branch
    /// target (mid-instruction targets cannot exist at instruction
    /// granularity).
    MalformedControlFlow,
    /// Execution can fall off the end of the program without a `halt`.
    MissingHalt,
    /// Instructions no path from the entry reaches.
    UnreachableCode,
    /// A retreating edge that is not a back edge: nesting depths (and the
    /// active-context approximation built on them) are undefined.
    IrreducibleLoop,
    /// A natural loop whose body is not the contiguous PC range the
    /// span-based register analysis assumes.
    NonContiguousLoop,
    /// A read may observe a register never written on some path from entry.
    MaybeUninitRead,
    /// A register write no path can observe.
    DeadStore,
    /// A write to a register the environment reserves.
    ReservedClobber,
}

impl LintKind {
    /// Stable machine-readable name (CI greps for these).
    pub fn name(self) -> &'static str {
        match self {
            LintKind::MalformedControlFlow => "malformed-control-flow",
            LintKind::MissingHalt => "missing-halt",
            LintKind::UnreachableCode => "unreachable-code",
            LintKind::IrreducibleLoop => "irreducible-loop",
            LintKind::NonContiguousLoop => "non-contiguous-loop",
            LintKind::MaybeUninitRead => "maybe-uninit-read",
            LintKind::DeadStore => "dead-store",
            LintKind::ReservedClobber => "reserved-clobber",
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Category.
    pub kind: LintKind,
    /// Offending PC (`None` for program-level findings).
    pub pc: Option<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "[{}] pc {}: {}", self.kind.name(), pc, self.message),
            None => write!(f, "[{}] {}", self.kind.name(), self.message),
        }
    }
}

fn reg_list(mask: u32) -> String {
    let mut parts: Vec<String> = regs_of_mask(mask).iter().map(|r| r.to_string()).collect();
    if mask & FLAGS_BIT != 0 {
        parts.push("flags".into());
    }
    parts.join(",")
}

/// Lints an instruction sequence under `cfg`'s environment assumptions.
/// Findings are ordered by (kind, pc), so output is deterministic.
pub fn lint_program(instrs: &[Instr], config: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let cfg = match Cfg::build(instrs) {
        Ok(c) => c,
        Err(e) => {
            let pc = match e {
                CfgError::OutOfBoundsTarget { pc, .. } => Some(pc),
                CfgError::Empty => None,
            };
            return vec![Diagnostic {
                kind: LintKind::MalformedControlFlow,
                pc,
                message: e.to_string(),
            }];
        }
    };

    for &pc in &cfg.falls_off_end {
        diags.push(Diagnostic {
            kind: LintKind::MissingHalt,
            pc: Some(pc),
            message: "execution can fall off the end of the program".into(),
        });
    }

    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            diags.push(Diagnostic {
                kind: LintKind::UnreachableCode,
                pc: Some(blk.start),
                message: format!(
                    "instructions {}..={} are unreachable from the entry",
                    blk.start,
                    blk.end - 1
                ),
            });
        }
    }

    if !cfg.reducible {
        diags.push(Diagnostic {
            kind: LintKind::IrreducibleLoop,
            pc: None,
            message: "control flow contains an irreducible region \
                      (a retreating edge that is not a back edge)"
                .into(),
        });
    }
    for l in cfg.loops.iter().filter(|l| !l.contiguous) {
        diags.push(Diagnostic {
            kind: LintKind::NonContiguousLoop,
            pc: Some(cfg.blocks[l.head].start),
            message: format!(
                "loop headed at pc {} has a non-contiguous body \
                 (back edge at pc {})",
                cfg.blocks[l.head].start,
                cfg.blocks[l.back_edge.0].terminator()
            ),
        });
    }

    let liveness = Liveness::compute(&cfg, instrs, config.halt_live);
    let reaching = ReachingDefs::compute(&cfg, instrs, config.initial_regs);

    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            continue; // already reported as unreachable
        }
        for (pc, instr) in instrs.iter().enumerate().take(blk.end).skip(blk.start) {
            let uses = use_mask(instr);
            let defs = def_mask(instr);

            let uninit = uses & reaching.maybe_uninit_at(pc);
            if uninit != 0 {
                diags.push(Diagnostic {
                    kind: LintKind::MaybeUninitRead,
                    pc: Some(pc),
                    message: format!(
                        "read of maybe-uninitialized {}: `{instr}`",
                        reg_list(uninit)
                    ),
                });
            }

            // Dead stores: register defs only — flag writes (cmp) are
            // routinely unconsumed on fall-through paths and harmless.
            let dead = defs & !FLAGS_BIT & !liveness.live_out[pc];
            if dead != 0 {
                diags.push(Diagnostic {
                    kind: LintKind::DeadStore,
                    pc: Some(pc),
                    message: format!(
                        "value written to {} is never read: `{instr}`",
                        reg_list(dead)
                    ),
                });
            }

            let clobber = defs & config.reserved;
            if clobber != 0 {
                diags.push(Diagnostic {
                    kind: LintKind::ReservedClobber,
                    pc: Some(pc),
                    message: format!("write to reserved {}: `{instr}`", reg_list(clobber)),
                });
            }
        }
    }

    diags.sort_by_key(|d| (d.kind, d.pc));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::reg::names::*;
    use virec_isa::{Asm, Cond};

    fn lint_asm(a: Asm, config: &LintConfig) -> Vec<Diagnostic> {
        let p = a.assemble();
        lint_program(p.instrs(), config)
    }

    fn kinds(diags: &[Diagnostic]) -> Vec<LintKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_kernel_has_no_findings() {
        let mut a = Asm::new("clean");
        a.mov_imm(X0, 0);
        a.mov_imm(X1, 8);
        a.label("top");
        a.add(X0, X0, X1);
        a.subi(X1, X1, 1);
        a.cbnz(X1, "top");
        a.halt();
        let diags = lint_asm(
            a,
            &LintConfig {
                initial_regs: 0,
                ..LintConfig::default()
            },
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn uninit_read_flagged() {
        let mut a = Asm::new("u");
        a.add(X0, X2, X3);
        a.halt();
        let diags = lint_asm(
            a,
            &LintConfig {
                initial_regs: 1 << 2, // x2 is a parameter, x3 is not
                ..LintConfig::default()
            },
        );
        assert_eq!(kinds(&diags), vec![LintKind::MaybeUninitRead]);
        // Only x3 is named as uninitialized (the part before the
        // instruction echo); x2 is a parameter.
        let named = diags[0].message.split('`').next().unwrap();
        assert!(named.contains("x3"), "{}", diags[0].message);
        assert!(!named.contains("x2"), "{}", diags[0].message);
    }

    #[test]
    fn flags_read_before_cmp_flagged() {
        let mut a = Asm::new("f");
        a.bcc(Cond::Eq, "end");
        a.label("end");
        a.halt();
        let diags = lint_asm(a, &LintConfig::default());
        assert_eq!(kinds(&diags), vec![LintKind::MaybeUninitRead]);
        assert!(diags[0].message.contains("flags"));
    }

    #[test]
    fn dead_store_flagged() {
        let mut a = Asm::new("d");
        a.mov_imm(X0, 1); // overwritten before any read
        a.mov_imm(X0, 2);
        a.halt();
        let diags = lint_asm(a, &LintConfig::default());
        assert_eq!(kinds(&diags), vec![LintKind::DeadStore]);
        assert_eq!(diags[0].pc, Some(0));
    }

    #[test]
    fn halt_live_keeps_final_values_alive() {
        let mut a = Asm::new("h");
        a.mov_imm(X0, 1); // only "use" is the final golden comparison
        a.halt();
        assert!(lint_asm(a, &LintConfig::default()).is_empty());
    }

    #[test]
    fn unreachable_and_missing_halt_flagged() {
        let mut a = Asm::new("m");
        a.b("end");
        a.mov_imm(X0, 1); // unreachable
        a.label("end");
        a.mov_imm(X1, 2); // falls off the end (and is thus also dead)
        let diags = lint_asm(a, &LintConfig::default());
        assert_eq!(
            kinds(&diags),
            vec![
                LintKind::MissingHalt,
                LintKind::UnreachableCode,
                LintKind::DeadStore
            ]
        );
    }

    #[test]
    fn reserved_clobber_flagged() {
        let mut a = Asm::new("r");
        a.mov_imm(X28, 0x8000);
        a.halt();
        let diags = lint_asm(
            a,
            &LintConfig {
                reserved: 1 << 28,
                ..LintConfig::default()
            },
        );
        // The write is both a reserved clobber and (x28 being in halt_live)
        // not a dead store.
        assert_eq!(kinds(&diags), vec![LintKind::ReservedClobber]);
    }

    #[test]
    fn oob_branch_is_stable_malformed_diagnostic() {
        use virec_isa::Instr;
        let instrs = vec![Instr::B { target: 7 }, Instr::Halt];
        let diags = lint_program(&instrs, &LintConfig::default());
        assert_eq!(kinds(&diags), vec![LintKind::MalformedControlFlow]);
        assert_eq!(
            diags[0].to_string(),
            "[malformed-control-flow] pc 0: branch at pc 0 targets 7, past the end"
        );
    }

    #[test]
    fn findings_are_deterministically_ordered() {
        let mut a = Asm::new("o");
        a.mov_imm(X0, 1);
        a.mov_imm(X0, 2); // pc 0 dead
        a.mov_imm(X1, 3);
        a.mov_imm(X1, 4); // pc 2 dead
        a.halt();
        let d1 = lint_asm(a, &LintConfig::default());
        assert_eq!(
            d1.iter().map(|d| d.pc).collect::<Vec<_>>(),
            vec![Some(0), Some(2)]
        );
    }
}
