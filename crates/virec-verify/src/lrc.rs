//! LRC live-bit cross-checks against static liveness (§5.1).
//!
//! The LRC replacement policy orders victims by commit (C) bits: a resident
//! register whose value has been produced by a *committed* instruction is a
//! safe eviction candidate, while an uncommitted resident register belongs
//! to a flushed in-flight instruction. §5.1's rollback-queue compaction
//! clears the C bits of exactly those registers at context-switch time, so
//! after every switch-out the engine's tag state must satisfy two static
//! facts:
//!
//! 1. **Commit bits are resident state**: `committed ⊆ resident`. A C bit
//!    can only be set by an allocate or touch of a live tag entry.
//! 2. **Uncommitted residents sit in the flushed window**: every resident-
//!    but-uncommitted register must be referenced by an instruction within
//!    [`ROLLBACK_DEPTH`] steps of the thread's resume PC — because the only
//!    way to lose a C bit is `flush_all_inflight`, and the flushed window
//!    restarts at `resume_pc`.
//!
//! [`check_liveness_on_golden_trace`] closes the loop from the other side:
//! it validates the liveness analysis itself against *dynamic* future-use
//! sets computed from a golden-interpreter trace. For every executed PC,
//! the set of registers the thread actually reads before overwriting them
//! downstream must be contained in `live_in(pc)` — an exact dynamic lower
//! bound on the static answer.

use crate::oracle::StaticOracle;
use virec_core::engines::ROLLBACK_DEPTH;
use virec_core::CoreConfig;
use virec_isa::dataflow::{def_mask, use_mask, ALL_REGS};
use virec_isa::{FlatMem, Interpreter, ThreadCtx};
use virec_sim::{try_run_single_traced, RunOptions};
use virec_workloads::{layout, Workload};

/// Statistics from a successful cross-check.
#[derive(Clone, Copy, Debug, Default)]
pub struct LrcReport {
    /// Quanta in the trace.
    pub quanta: usize,
    /// Quanta that carried engine live-bit samples (ViReC engine only).
    pub sampled: usize,
    /// Quanta with at least one uncommitted resident register (i.e. the
    /// §5.1 compaction actually fired and left evidence).
    pub compacted: usize,
    /// Dynamic trace steps checked by
    /// [`check_liveness_on_golden_trace`] (0 for [`check_lrc`]).
    pub steps_checked: u64,
}

/// A violated LRC or liveness invariant.
#[derive(Clone, Debug)]
pub enum LrcViolation {
    /// The simulation itself failed before any invariant could be checked.
    RunFailed(String),
    /// A commit bit was set on a non-resident register — C bits must be a
    /// subset of the resident set by construction.
    CommittedNotResident {
        /// Thread.
        tid: u8,
        /// Per-thread quantum index.
        quantum: usize,
        /// `committed & !resident`.
        ghost: u32,
    },
    /// A resident-but-uncommitted register is not referenced by any
    /// instruction within the rollback window of the thread's resume PC —
    /// the cleared C bit cannot have come from §5.1 compaction.
    UncommittedOutsideWindow {
        /// Thread.
        tid: u8,
        /// Per-thread quantum index.
        quantum: usize,
        /// PC the thread will resume at.
        resume_pc: u32,
        /// Resident-but-uncommitted mask.
        uncommitted: u32,
        /// Static near-access mask of the rollback window.
        window: u32,
    },
    /// The dynamic future-use set at an executed PC exceeds static
    /// liveness — the liveness analysis is unsound.
    FutureUseNotLive {
        /// Thread.
        tid: usize,
        /// Executed PC.
        pc: u32,
        /// Registers actually read before being overwritten downstream.
        future_use: u32,
        /// Static live-in mask at `pc`.
        live_in: u32,
    },
}

impl std::fmt::Display for LrcViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LrcViolation::RunFailed(e) => write!(f, "simulation failed: {e}"),
            LrcViolation::CommittedNotResident {
                tid,
                quantum,
                ghost,
            } => write!(
                f,
                "tid {tid} quantum {quantum}: commit bits {ghost:#010x} set on \
                 non-resident registers"
            ),
            LrcViolation::UncommittedOutsideWindow {
                tid,
                quantum,
                resume_pc,
                uncommitted,
                window,
            } => write!(
                f,
                "tid {tid} quantum {quantum}: uncommitted residents {uncommitted:#010x} \
                 outside the {ROLLBACK_DEPTH}-deep rollback window {window:#010x} \
                 at resume pc {resume_pc}"
            ),
            LrcViolation::FutureUseNotLive {
                tid,
                pc,
                future_use,
                live_in,
            } => write!(
                f,
                "tid {tid} pc {pc}: dynamic future-use {future_use:#010x} exceeds \
                 static live-in {live_in:#010x}"
            ),
        }
    }
}

impl std::error::Error for LrcViolation {}

/// Runs `workload` on a ViReC core (LRC policy) with quantum tracing and
/// checks the engine's live-bit state — the resident and committed masks
/// sampled after §5.1 rollback-queue compaction at every context switch —
/// against the static invariants described in the module docs.
pub fn check_lrc(
    workload: &Workload,
    nthreads: usize,
    phys_regs: usize,
) -> Result<LrcReport, LrcViolation> {
    let oracle = StaticOracle::build(workload.program(), ALL_REGS)
        .map_err(|e| LrcViolation::RunFailed(format!("CFG build failed: {e}")))?;
    let nprog = workload.program().instrs().len() as u32;

    // CoreConfig::virec defaults to PolicyKind::Lrc — the policy under test.
    let cfg = CoreConfig::virec(nthreads, phys_regs);
    let (_, trace) = try_run_single_traced(cfg, workload, &RunOptions::default())
        .map_err(|e| LrcViolation::RunFailed(e.to_string()))?;

    let mut report = LrcReport::default();
    let mut per_tid_quantum = std::collections::HashMap::new();
    for q in &trace.quanta {
        let k = per_tid_quantum.entry(q.tid).or_insert(0usize);
        let quantum = *k;
        *k += 1;
        report.quanta += 1;
        if !q.has_live_bits {
            continue;
        }
        report.sampled += 1;

        let ghost = q.committed & !q.resident;
        if ghost != 0 {
            return Err(LrcViolation::CommittedNotResident {
                tid: q.tid,
                quantum,
                ghost,
            });
        }

        let uncommitted = q.resident & !q.committed;
        if uncommitted != 0 {
            report.compacted += 1;
            // A halted thread resumes nowhere; only the residency invariant
            // applies. (resume_pc may also sit one past the program when the
            // final quantum ends exactly at `halt`.)
            if !q.halted && q.resume_pc < nprog {
                let window = oracle.near_access_mask(q.resume_pc, ROLLBACK_DEPTH);
                if uncommitted & !window != 0 {
                    return Err(LrcViolation::UncommittedOutsideWindow {
                        tid: q.tid,
                        quantum,
                        resume_pc: q.resume_pc,
                        uncommitted,
                        window,
                    });
                }
            }
        }
    }
    Ok(report)
}

/// Validates static liveness against dynamic future-use sets from golden-
/// interpreter traces of every thread: at each executed PC, the registers
/// the thread goes on to read before overwriting must be live there.
pub fn check_liveness_on_golden_trace(
    workload: &Workload,
    nthreads: usize,
) -> Result<LrcReport, LrcViolation> {
    let oracle = StaticOracle::build(workload.program(), ALL_REGS)
        .map_err(|e| LrcViolation::RunFailed(format!("CFG build failed: {e}")))?;
    let instrs = workload.program().instrs();

    let mut report = LrcReport::default();
    for t in 0..nthreads {
        let mut mem = FlatMem::new(
            0,
            layout::mem_size(1)
                .max((workload.layout.data_base + workload.layout.data_size) as usize),
        );
        workload.init_mem(&mut mem);
        let mut ctx = ThreadCtx::new();
        for (r, v) in workload.thread_ctx(t, nthreads) {
            ctx.set(r, v);
        }

        // Record the executed PC sequence.
        let mut interp = Interpreter::new(workload.program(), &mut mem);
        let mut pcs = Vec::new();
        let step_cap = 4_000_000u64;
        while !ctx.halted {
            if pcs.len() as u64 >= step_cap {
                return Err(LrcViolation::RunFailed(format!(
                    "golden run of thread {t} exceeded {step_cap} steps"
                )));
            }
            pcs.push(ctx.pc);
            interp.step(&mut ctx);
        }
        // Walk the trace backward accumulating the dynamic future-use set:
        // fu(pc_i) = use(pc_i) ∪ (fu(pc_{i+1}) \ def(pc_i)). At the final
        // instruction (`halt`) nothing further is read.
        let mut fu = 0u32;
        for &pc in pcs.iter().rev() {
            let i = &instrs[pc as usize];
            fu = (fu & !def_mask(i)) | use_mask(i);
            let live = oracle.live_in(pc);
            if fu & !live != 0 {
                return Err(LrcViolation::FutureUseNotLive {
                    tid: t,
                    pc,
                    future_use: fu,
                    live_in: live,
                });
            }
            report.steps_checked += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_workloads::{by_name, Layout};

    #[test]
    fn lrc_live_bits_match_static_liveness_on_daxpy() {
        let w = by_name("daxpy", 128, Layout::for_core(0)).unwrap();
        let report = check_lrc(&w, 4, 24).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.sampled > 0, "ViReC runs must sample live bits");
    }

    #[test]
    fn golden_future_use_is_bounded_by_liveness() {
        let w = by_name("gather", 64, Layout::for_core(0)).unwrap();
        let report = check_liveness_on_golden_trace(&w, 4).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.steps_checked > 0);
    }
}
