#![warn(missing_docs)]

//! # virec-verify
//!
//! Static-analysis verification layer for the ViReC reproduction: an
//! independent source of truth that cross-validates the timing models
//! against exact dataflow facts, plus a lint gate that catches malformed
//! kernels before they burn sweep cycles.
//!
//! * [`lint`] — the ISA lint driver over `virec_isa::cfg`/`dataflow`:
//!   maybe-uninitialized reads, dead stores, unreachable code,
//!   out-of-bounds branch targets, missing `halt`, reserved-register
//!   clobbers, irreducible/non-contiguous loops. Every built-in workload
//!   kernel and every `virec-cc` output at every register budget must lint
//!   clean (`virec-cli lint`, enforced in CI).
//! * [`oracle`] — [`oracle::StaticOracle`]: exact per-PC liveness turned
//!   into oracle prefetch contexts (§6.1), cross-checked against the
//!   *recorded* `OracleSchedule` and the per-quantum demand sets observed
//!   by the pipeline. The invariant is `demand ⊆ live_in(start_pc)` —
//!   acquired instructions are always on the true execution path, so the
//!   dynamic read-before-written set can never exceed static liveness.
//! * [`lrc`] — cross-checks the LRC replacement policy's live-bit
//!   bookkeeping (§5.1 commit bits sampled after rollback-queue
//!   compaction) against static liveness, and validates liveness itself
//!   against dynamic future-use sets from golden-interpreter traces.
//! * [`tv`] — translation validation of `virec-cc`'s register allocation:
//!   replays the emitter's per-instruction witness against independently
//!   recomputed liveness, spill/reload reaching-stores dataflow, scratch
//!   containment, and a concrete differential run against the IR
//!   interpreter. Every compiled kernel at every budget must validate
//!   (`virec-cli tv`, enforced in CI).
//! * [`suite`] — lint/TV configurations and drivers for the built-in
//!   workload suite and the `virec-cc` budget ladder (the CLI and CI entry
//!   points).

pub mod lint;
pub mod lrc;
pub mod oracle;
pub mod suite;
pub mod tv;

pub use lint::{lint_program, Diagnostic, LintConfig, LintKind};
pub use lrc::{check_liveness_on_golden_trace, check_lrc, LrcReport, LrcViolation};
pub use oracle::{OracleCrossCheck, OracleViolation, StaticOracle};
pub use suite::{
    broken_fixture, broken_spill_report, lint_compiled_budgets, lint_everything, lint_workloads,
    tv_compiled_budgets, tv_kernels, workload_lint_config, SuiteLint,
};
pub use tv::{validate, TvCase, TvKind, TvReport, TvViolation};
