//! The liveness-derived static prefetch oracle (§6.1).
//!
//! The recorded `OracleSchedule` is a *dynamic* artifact: the per-quantum
//! register masks one particular run happened to use. The [`StaticOracle`]
//! derives the same contexts from exact liveness at the quantum's start PC
//! — no recording run needed — and the cross-check pins down how the two
//! relate at every scheduling quantum:
//!
//! * `demand ⊆ live_in(start_pc)` — **hard invariant**. The demand set
//!   (registers read before written by acquired instructions) can never
//!   exceed static liveness, because acquired instructions are on the true
//!   execution path (branches resolve at decode-exit; only fetched-but-
//!   unacquired slots are squashed).
//! * `used \ live_in` — registers *written first* in the quantum. These
//!   are intentional divergence: a prefetcher can satisfy them with dummy
//!   fills (§6.2's dummy-fill optimization), so the static context omits
//!   them on purpose.
//! * `live_in \ used` — registers the static context would prefetch that
//!   the quantum never touched, because a context switch truncated the
//!   quantum before reaching them. Also intentional: the static oracle
//!   cannot know where the switch will land.

use virec_core::{OracleSchedule, QuantumTrace};
use virec_isa::cfg::{Cfg, CfgError};
use virec_isa::dataflow::{Liveness, ALL_REGS};
use virec_isa::{Instr, Program};

/// Exact static liveness over a program, packaged for prefetch derivation.
#[derive(Clone, Debug)]
pub struct StaticOracle {
    instrs: Vec<Instr>,
    live_in: Vec<u32>,
}

/// Aggregate statistics of a successful cross-check.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleCrossCheck {
    /// Quanta examined.
    pub quanta: usize,
    /// Quanta whose used set equals the static prefetch context exactly.
    pub exact: usize,
    /// Total write-first register occurrences (`used \ live_in`) — the
    /// dummy-fillable divergence.
    pub write_first: u64,
    /// Total prefetched-but-untouched occurrences (`live_in \ used`) —
    /// switch-truncated quanta.
    pub truncated: u64,
}

/// A violated cross-check invariant.
#[derive(Clone, Debug)]
pub enum OracleViolation {
    /// The pipeline's demand set exceeded static liveness at the quantum's
    /// start PC — the liveness analysis (or the trace) is wrong.
    DemandNotLive {
        /// Thread.
        tid: u8,
        /// Per-thread quantum index.
        quantum: usize,
        /// Quantum start PC.
        start_pc: u32,
        /// Observed demand mask.
        demand: u32,
        /// Static live-in mask.
        live_in: u32,
        /// `demand & !live_in`.
        excess: u32,
    },
    /// The recorded oracle's mask disagrees with the quantum trace's used
    /// set for the same run — recorder and tracer have desynchronized.
    RecordedMismatch {
        /// Thread.
        tid: u8,
        /// Per-thread quantum index.
        quantum: usize,
        /// Mask from the recorded `OracleSchedule`.
        recorded: Option<u32>,
        /// Used mask from the quantum trace.
        observed: u32,
    },
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleViolation::DemandNotLive {
                tid,
                quantum,
                start_pc,
                demand,
                live_in,
                excess,
            } => write!(
                f,
                "tid {tid} quantum {quantum} at pc {start_pc}: demand {demand:#010x} \
                 exceeds static live-in {live_in:#010x} (excess {excess:#010x})"
            ),
            OracleViolation::RecordedMismatch {
                tid,
                quantum,
                recorded,
                observed,
            } => write!(
                f,
                "tid {tid} quantum {quantum}: recorded oracle mask {recorded:?} \
                 != traced used mask {observed:#010x}"
            ),
        }
    }
}

impl std::error::Error for OracleViolation {}

impl StaticOracle {
    /// Builds the oracle from exact liveness. `halt_live` follows the lint
    /// convention (usually [`ALL_REGS`]: the final register file is
    /// architecturally observable).
    pub fn build(program: &Program, halt_live: u32) -> Result<StaticOracle, CfgError> {
        let instrs = program.instrs().to_vec();
        let cfg = Cfg::build(&instrs)?;
        let lv = Liveness::compute(&cfg, &instrs, halt_live);
        Ok(StaticOracle {
            instrs,
            live_in: lv.live_in,
        })
    }

    /// Static live-in mask (registers + flags bit) at `pc`.
    pub fn live_in(&self, pc: u32) -> u32 {
        self.live_in.get(pc as usize).copied().unwrap_or(0)
    }

    /// The oracle-exact prefetch context for a quantum starting at `pc`:
    /// the statically live registers (flags travel with the sysreg buffer,
    /// not the register file, so the bit is stripped).
    pub fn prefetch_mask(&self, pc: u32) -> u32 {
        self.live_in(pc) & ALL_REGS
    }

    /// Union of registers referenced by any instruction reachable within
    /// `depth` instructions of `pc` (inclusive) — the static bound on what
    /// a flushed in-flight window can have touched.
    pub fn near_access_mask(&self, pc: u32, depth: usize) -> u32 {
        let mut mask = 0u32;
        let mut frontier = vec![pc as usize];
        let mut seen = vec![false; self.instrs.len()];
        for _ in 0..depth {
            let mut next = Vec::new();
            for p in frontier {
                if p >= self.instrs.len() || seen[p] {
                    continue;
                }
                seen[p] = true;
                let i = &self.instrs[p];
                for r in i.regs().iter() {
                    mask |= 1 << r.index();
                }
                match i {
                    Instr::Halt => {}
                    Instr::B { target } => next.push(*target as usize),
                    _ => {
                        next.push(p + 1);
                        if let Some(t) = i.branch_target() {
                            next.push(t as usize);
                        }
                    }
                }
            }
            frontier = next;
        }
        mask
    }

    /// Derives an [`OracleSchedule`] from static liveness at each traced
    /// quantum's start PC — the §6.1 "oracle prediction" without the
    /// recording run. Replaying it through a prefetch-exact core is
    /// verified against the golden interpreter (quantum boundaries differ
    /// between the recording and the replay, so correctness comes from the
    /// demand-fill fallback, not mask alignment).
    pub fn derive_schedule(&self, trace: &QuantumTrace, nthreads: usize) -> OracleSchedule {
        let mut sets = vec![Vec::new(); nthreads];
        for q in &trace.quanta {
            if let Some(v) = sets.get_mut(q.tid as usize) {
                v.push(self.prefetch_mask(q.start_pc));
            }
        }
        OracleSchedule { sets }
    }

    /// Cross-checks a quantum trace (and optionally the recorded oracle of
    /// the same run) against static liveness. See the module docs for the
    /// invariant and the two intentional divergence classes.
    pub fn cross_check(
        &self,
        trace: &QuantumTrace,
        recorded: Option<&OracleSchedule>,
    ) -> Result<OracleCrossCheck, OracleViolation> {
        let mut per_tid_quantum = std::collections::HashMap::new();
        let mut out = OracleCrossCheck::default();
        for q in &trace.quanta {
            let k = per_tid_quantum.entry(q.tid).or_insert(0usize);
            let quantum = *k;
            *k += 1;

            if let Some(rec) = recorded {
                let mask = rec.mask(q.tid as usize, quantum);
                if mask != Some(q.used) {
                    return Err(OracleViolation::RecordedMismatch {
                        tid: q.tid,
                        quantum,
                        recorded: mask,
                        observed: q.used,
                    });
                }
            }

            let live = self.live_in(q.start_pc);
            if q.demand & !live != 0 {
                return Err(OracleViolation::DemandNotLive {
                    tid: q.tid,
                    quantum,
                    start_pc: q.start_pc,
                    demand: q.demand,
                    live_in: live,
                    excess: q.demand & !live,
                });
            }

            let static_ctx = live & ALL_REGS;
            out.quanta += 1;
            if q.used == static_ctx {
                out.exact += 1;
            }
            out.write_first += u64::from((q.used & !static_ctx).count_ones());
            out.truncated += u64::from((static_ctx & !q.used).count_ones());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::reg::names::*;
    use virec_isa::Asm;

    fn prog() -> Program {
        let mut a = Asm::new("p");
        a.label("top");
        a.add(X0, X0, X1); // live at top: x0, x1, x2 (+everything via halt)
        a.subi(X1, X1, 1);
        a.cbnz(X1, "top");
        a.add(X3, X2, X2);
        a.halt();
        a.assemble()
    }

    #[test]
    fn prefetch_mask_is_liveness() {
        let o = StaticOracle::build(&prog(), 0).unwrap();
        let m = o.prefetch_mask(0);
        assert_eq!(m, (1 << 0) | (1 << 1) | (1 << 2));
    }

    #[test]
    fn near_access_window_bounds_inflight_regs() {
        let o = StaticOracle::build(&prog(), 0).unwrap();
        // From pc 0, a 2-instruction window touches x0 and x1 only.
        assert_eq!(o.near_access_mask(0, 2), (1 << 0) | (1 << 1));
        // A 4-instruction window can wrap the back edge or reach pc 3.
        let w4 = o.near_access_mask(0, 4);
        assert_eq!(w4, (1 << 0) | (1 << 1) | (1 << 2) | (1 << 3));
    }
}
