//! Lint configurations and drivers for the repository's two program
//! sources: the built-in workload suite and the `virec-cc` budget ladder.
//!
//! These are the entry points behind `virec-cli lint` and the CI lint gate:
//! every kernel the harness can sweep, and every program the compiler can
//! emit at every register budget, must produce zero diagnostics. The
//! [`broken_fixture`] is the negative control — a deliberately malformed
//! program CI uses to prove the gate actually rejects bad input.

use crate::lint::{lint_program, Diagnostic, LintConfig};
use crate::tv::{validate, TvCase, TvReport};
use virec_cc::ir::{BinOp, Cmp, Function, Operand, Stmt};
use virec_cc::{compile, compile_with, AllocStrategy, EmitTag};
use virec_isa::dataflow::ALL_REGS;
use virec_isa::{Instr, MemOffset};
use virec_workloads::{suite, Layout, Workload};

/// Thread count used to derive workload initial-register sets. Matches the
/// default evaluation configuration (Table 1).
const CTX_THREADS: usize = 4;

/// Register budgets swept by [`lint_compiled_budgets`] — the full legal
/// range's endpoints plus the paper's §4.2 sweep points.
pub const LINT_BUDGETS: &[usize] = &[1, 2, 3, 4, 6, 8, 10, 14, 17];

/// Lint outcome for one named program.
#[derive(Clone, Debug)]
pub struct SuiteLint {
    /// Program name (workload name, or `kernel@b<budget>` for compiled
    /// functions).
    pub name: String,
    /// Diagnostics, sorted by (kind, pc); empty means clean.
    pub diagnostics: Vec<Diagnostic>,
}

impl SuiteLint {
    /// True when the program linted clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Derives the lint configuration for a built-in workload: a register is
/// "initialized" iff *every* thread's offloaded context sets it — reading
/// anything else before writing it is a lint error.
pub fn workload_lint_config(w: &Workload) -> LintConfig {
    let mut initial = ALL_REGS;
    for t in 0..CTX_THREADS {
        let mut regs = 0u32;
        for (r, _) in w.thread_ctx(t, CTX_THREADS) {
            regs |= 1 << r.index();
        }
        initial &= regs;
    }
    LintConfig {
        initial_regs: initial,
        // Workload kernels own the whole architectural file.
        reserved: 0,
        // The harness diffs the full final register file against the golden
        // interpreter, so every register is observable at halt.
        halt_live: ALL_REGS,
    }
}

/// Lints every workload in the built-in suite at problem size `n`.
pub fn lint_workloads(n: u64) -> Vec<SuiteLint> {
    suite(n, Layout::for_core(0))
        .iter()
        .map(|w| {
            let cfg = workload_lint_config(w);
            SuiteLint {
                name: w.name.to_string(),
                diagnostics: lint_program(w.program().instrs(), &cfg),
            }
        })
        .collect()
}

/// A gather kernel in `virec-cc` IR: `Σ data[idx[i]]` over three params.
/// Mirrors the compiler's own differential-test kernel so the lint gate
/// sees the same spill patterns the correctness tests exercise.
fn gather_ir() -> Function {
    Function {
        name: "gather_ir".into(),
        params: vec![0, 1, 2],
        body: vec![
            Stmt::def_const(3, 0),
            Stmt::def_const(4, 0),
            Stmt::While {
                cond: (Operand::Temp(4), Cmp::Lt, Operand::Temp(2)),
                body: vec![
                    Stmt::Load {
                        dst: 5,
                        base: 1,
                        index: Operand::Temp(4),
                    },
                    Stmt::Load {
                        dst: 6,
                        base: 0,
                        index: Operand::Temp(5),
                    },
                    Stmt::def_bin(3, BinOp::Add, Operand::Temp(3), Operand::Temp(6)),
                    Stmt::def_bin(4, BinOp::Add, Operand::Temp(4), Operand::Const(1)),
                ],
            },
            Stmt::Return {
                value: Operand::Temp(3),
            },
        ],
    }
}

/// A nested-loop kernel: `Σ_{i<4} Σ_{j<6} i*j`. Exercises loop nesting and
/// higher live-range pressure in the allocator.
fn nested_ir() -> Function {
    Function {
        name: "nested_ir".into(),
        params: vec![],
        body: vec![
            Stmt::def_const(0, 0),
            Stmt::def_const(1, 0),
            Stmt::While {
                cond: (Operand::Temp(1), Cmp::Lt, Operand::Const(4)),
                body: vec![
                    Stmt::def_const(2, 0),
                    Stmt::While {
                        cond: (Operand::Temp(2), Cmp::Lt, Operand::Const(6)),
                        body: vec![
                            Stmt::def_bin(3, BinOp::Mul, Operand::Temp(1), Operand::Temp(2)),
                            Stmt::def_bin(0, BinOp::Add, Operand::Temp(0), Operand::Temp(3)),
                            Stmt::def_bin(2, BinOp::Add, Operand::Temp(2), Operand::Const(1)),
                        ],
                    },
                    Stmt::def_bin(1, BinOp::Add, Operand::Temp(1), Operand::Const(1)),
                ],
            },
            Stmt::Return {
                value: Operand::Temp(0),
            },
        ],
    }
}

/// Lints every compiler output across [`LINT_BUDGETS`]: the ABI guarantees
/// exactly the parameter registers plus the frame pointer on entry, and the
/// frame pointer must never be clobbered.
pub fn lint_compiled_budgets() -> Vec<SuiteLint> {
    let mut out = Vec::new();
    for f in [gather_ir(), nested_ir()] {
        for &budget in LINT_BUDGETS {
            let c = match compile(&f, budget) {
                Ok(c) => c,
                Err(e) => {
                    out.push(SuiteLint {
                        name: format!("{}@b{budget}", f.name),
                        diagnostics: vec![Diagnostic {
                            kind: crate::lint::LintKind::MalformedControlFlow,
                            pc: None,
                            message: format!("compile failed: {e:?}"),
                        }],
                    });
                    continue;
                }
            };
            let mut initial = 1u32 << c.frame_reg.index();
            for r in &c.param_regs {
                initial |= 1 << r.index();
            }
            let cfg = LintConfig {
                initial_regs: initial,
                reserved: 1 << c.frame_reg.index(),
                halt_live: ALL_REGS,
            };
            out.push(SuiteLint {
                name: format!("{}@b{budget}", f.name),
                diagnostics: lint_program(c.program.instrs(), &cfg),
            });
        }
    }
    out
}

/// Lints the whole surface: every suite workload at size `n` plus every
/// compiled budget. The CI gate fails if any entry is non-clean.
pub fn lint_everything(n: u64) -> Vec<SuiteLint> {
    let mut out = lint_workloads(n);
    out.extend(lint_compiled_budgets());
    out
}

/// A deliberately malformed program — a branch past the end of the text —
/// used by CI to prove the lint gate exits nonzero with a stable
/// diagnostic (`[malformed-control-flow] pc 0: branch at pc 0 targets 7,
/// past the end`).
pub fn broken_fixture() -> Vec<Instr> {
    vec![Instr::B { target: 7 }, Instr::Halt]
}

/// Concrete inputs for the gather kernel's architectural cross-check.
fn gather_cases() -> Vec<TvCase> {
    let mut cases = Vec::new();
    for n in [7u64, 24] {
        let mut mem = Vec::new();
        for i in 0..n {
            mem.push((0x1000 + i * 8, i.wrapping_mul(11) ^ n));
            mem.push((0x2000 + i * 8, (i * 13) % n));
        }
        cases.push(TvCase {
            args: vec![0x1000, 0x2000, n],
            mem,
        });
    }
    cases
}

/// The translation-validation kernel set: every compiled function the gate
/// sweeps, paired with concrete inputs for the architectural cross-check.
pub fn tv_kernels() -> Vec<(Function, Vec<TvCase>)> {
    vec![
        (gather_ir(), gather_cases()),
        (nested_ir(), vec![TvCase::default()]),
    ]
}

/// Translation-validates every compiler output across [`LINT_BUDGETS`] and
/// both allocation strategies: the emitted machine code must provably
/// implement the pre-allocation IR. This is the TV gate behind
/// `virec-cli tv` and CI, and the preflight for compiled-kernel sweeps.
pub fn tv_compiled_budgets() -> Vec<TvReport> {
    let mut out = Vec::new();
    for (f, cases) in tv_kernels() {
        for strategy in [AllocStrategy::GraphColor, AllocStrategy::LinearScan] {
            for &budget in LINT_BUDGETS {
                let name = format!("{}@b{budget}/{}", f.name, strategy.name());
                match compile_with(&f, budget, strategy) {
                    Ok(c) => out.push(validate(&name, &f, &c, &cases)),
                    Err(e) => out.push(TvReport {
                        name,
                        violations: vec![crate::tv::TvViolation {
                            kind: crate::tv::TvKind::EmitMapMismatch,
                            pc: None,
                            message: format!("compile failed: {e:?}"),
                        }],
                        cases_run: 0,
                    }),
                }
            }
        }
    }
    out
}

/// The TV negative control: the gather kernel compiled at a spilling
/// budget, with one reload's frame offset bumped by a slot — a
/// miscompilation the lint gate cannot see (the program is still
/// well-formed) but translation validation must reject with the stable
/// `[tv:spill-slot-mismatch]` diagnostic.
pub fn broken_spill_report() -> TvReport {
    let f = gather_ir();
    let mut c = compile(&f, 2).expect("budget 2 compiles");
    let pc = c
        .emit_map
        .iter()
        .position(|t| matches!(t, EmitTag::Reload { .. }))
        .expect("budget 2 spills");
    let Instr::Ldr {
        dst,
        base,
        offset: MemOffset::Imm(off),
        size,
    } = c.program.fetch(pc as u32)
    else {
        unreachable!("tagged reload is a frame load");
    };
    c.program = c.program.patched(
        pc,
        Instr::Ldr {
            dst,
            base,
            offset: MemOffset::Imm(off + 8),
            size,
        },
    );
    validate("gather_ir@b2!broken-spill", &f, &c, &gather_cases())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_lint_clean() {
        for l in lint_workloads(256) {
            assert!(
                l.is_clean(),
                "{} has diagnostics:\n{}",
                l.name,
                l.diagnostics
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    #[test]
    fn all_compiled_budgets_lint_clean() {
        let lints = lint_compiled_budgets();
        assert_eq!(lints.len(), 2 * LINT_BUDGETS.len());
        for l in &lints {
            assert!(
                l.is_clean(),
                "{} has diagnostics:\n{}",
                l.name,
                l.diagnostics
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    #[test]
    fn all_compiled_budgets_translation_validate() {
        let reports = tv_compiled_budgets();
        assert_eq!(reports.len(), 2 * 2 * LINT_BUDGETS.len());
        for r in &reports {
            assert!(
                r.is_valid(),
                "{} has TV violations:\n{}",
                r.name,
                r.violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            assert!(r.cases_run > 0, "{} ran no concrete cases", r.name);
        }
    }

    #[test]
    fn broken_spill_fixture_is_rejected_with_the_stable_diagnostic() {
        let r = broken_spill_report();
        assert!(!r.is_valid());
        assert!(
            r.violations
                .iter()
                .any(|v| v.to_string().contains("[tv:spill-slot-mismatch]")),
            "expected [tv:spill-slot-mismatch], got:\n{}",
            r.violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn broken_fixture_produces_the_stable_diagnostic() {
        let diags = lint_program(&broken_fixture(), &LintConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0].to_string(),
            "[malformed-control-flow] pc 0: branch at pc 0 targets 7, past the end"
        );
    }
}
