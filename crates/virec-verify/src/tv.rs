//! Translation validation of register allocation: proves that an
//! allocated + emitted `virec-cc` program computes the same thing as its
//! pre-allocation IR.
//!
//! The validator replays the emitter's witness — the per-instruction
//! [`EmitTag`] stream — against facts it recomputes *independently*:
//!
//! 1. **Coloring soundness** — CFG-exact liveness is recomputed over the
//!    virtual code ([`virec_cc::vcfg`]) and every definition is checked
//!    against its live-out set: two simultaneously live temps must never
//!    share a register, homes must come from the budget's pool, and slot
//!    numbers must stay inside the frame.
//! 2. **Matched def-use dataflow** — each virtual instruction's emitted
//!    group is checked operand by operand: every use reads its temp's
//!    home location (a pool register directly, or a scratch register
//!    freshly reloaded *in this group* from the temp's own frame slot)
//!    and every def writes its home (directly, or scratch + writeback to
//!    the owning slot). Opcodes, immediates, and branch targets must
//!    match the virtual instruction exactly.
//! 3. **Spill/reload pairing** — a forward reaching-stores dataflow over
//!    the *machine* CFG proves every `Slot(n)` reload is reached only by
//!    writebacks of the same temp, and by at least one on every path.
//! 4. **Scratch containment** — the spill scratch set (`x25..x27`) must
//!    be dead at every group boundary: reads are legal only after an
//!    in-group definition.
//! 5. **Frame integrity** — the frame pointer is never clobbered and the
//!    frame is touched only by tagged spill traffic within bounds.
//! 6. **Architectural-effect equivalence** — the IR interpreter and the
//!    machine interpreter run the same concrete inputs; return values
//!    and all memory outside the spill frame must agree byte for byte.

use std::collections::{HashMap, HashSet};
use virec_cc::ir::{interpret, BinOp, Function};
use virec_cc::lower::{VIndex, VInst, VOp};
use virec_cc::regalloc::{pool, Loc, FRAME_PTR, SCRATCH0, SCRATCH1, SCRATCH2};
use virec_cc::vcfg::VDataflow;
use virec_cc::{Compiled, EmitTag};
use virec_isa::{
    AccessSize, AluOp, ExecOutcome, FlatMem, Instr, Interpreter, MemOffset, Operand2, Reg,
    ThreadCtx,
};

/// Frame base used for concrete-equivalence runs.
const TV_FRAME_BASE: u64 = 0x8000;
/// Memory image size for concrete-equivalence runs.
const TV_MEM_SIZE: u64 = 0x10_000;
/// Step budget for concrete-equivalence runs.
const TV_MAX_STEPS: u64 = 10_000_000;

/// The category of a translation-validation finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TvKind {
    /// The emit map does not cover the program or is out of order.
    EmitMapMismatch,
    /// Two simultaneously live temps share a register, or a definition
    /// clobbers a live temp's home.
    ColoringConflict,
    /// A temp's home register is outside the budget's pool, or its slot
    /// is outside the frame.
    BadRegisterClass,
    /// A tagged reload/writeback is not the frame access it claims to be.
    MalformedSpill,
    /// A reload or writeback touches a different frame slot than the one
    /// its temp owns.
    SpillSlotMismatch,
    /// A store of a *different* temp reaches a reload of this slot.
    StaleReload,
    /// A path reaches a reload with no store to the slot at all.
    UninitReload,
    /// A scratch register is read without an in-group definition — its
    /// value would leak across a group boundary.
    ScratchEscape,
    /// The frame pointer is written, or the frame is touched by untagged
    /// code.
    FrameClobber,
    /// A machine instruction does not implement its virtual instruction.
    OpcodeMismatch,
    /// An operand register or immediate differs from the allocation.
    OperandMismatch,
    /// A branch condition or target does not match the label layout.
    BranchMismatch,
    /// Concrete run: the return value diverged from the IR interpreter.
    ResultDivergence,
    /// Concrete run: memory outside the spill frame diverged.
    MemoryDivergence,
}

impl TvKind {
    /// Stable machine-readable name (CI greps for these).
    pub fn name(self) -> &'static str {
        match self {
            TvKind::EmitMapMismatch => "emit-map-mismatch",
            TvKind::ColoringConflict => "coloring-conflict",
            TvKind::BadRegisterClass => "bad-register-class",
            TvKind::MalformedSpill => "malformed-spill",
            TvKind::SpillSlotMismatch => "spill-slot-mismatch",
            TvKind::StaleReload => "stale-reload",
            TvKind::UninitReload => "uninit-reload",
            TvKind::ScratchEscape => "scratch-escape",
            TvKind::FrameClobber => "frame-clobber",
            TvKind::OpcodeMismatch => "opcode-mismatch",
            TvKind::OperandMismatch => "operand-mismatch",
            TvKind::BranchMismatch => "branch-mismatch",
            TvKind::ResultDivergence => "result-divergence",
            TvKind::MemoryDivergence => "memory-divergence",
        }
    }
}

/// One translation-validation finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TvViolation {
    /// Category.
    pub kind: TvKind,
    /// Offending machine PC (`None` for program-level findings).
    pub pc: Option<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for TvViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "[tv:{}] pc {}: {}", self.kind.name(), pc, self.message),
            None => write!(f, "[tv:{}] {}", self.kind.name(), self.message),
        }
    }
}

/// Concrete inputs for the architectural-effect cross-check.
#[derive(Clone, Debug, Default)]
pub struct TvCase {
    /// Function arguments (ABI registers `x0..`).
    pub args: Vec<u64>,
    /// Initial memory image: `(address, 64-bit word)` writes.
    pub mem: Vec<(u64, u64)>,
}

/// Validation outcome for one compiled function.
#[derive(Clone, Debug)]
pub struct TvReport {
    /// Program name (`kernel@b<budget>` style, set by the caller).
    pub name: String,
    /// Findings, in pass order; empty means the translation validated.
    pub violations: Vec<TvViolation>,
    /// Concrete cases executed by pass 6.
    pub cases_run: usize,
}

impl TvReport {
    /// True when every pass succeeded.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

fn alu_of(op: BinOp) -> AluOp {
    match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Orr,
        BinOp::Xor => AluOp::Eor,
        BinOp::Shl => AluOp::Lsl,
        BinOp::Shr => AluOp::Lsr,
    }
}

fn is_scratch(r: Reg) -> bool {
    r == SCRATCH0 || r == SCRATCH1 || r == SCRATCH2
}

fn vinst_of(tag: &EmitTag) -> usize {
    match *tag {
        EmitTag::Reload { vinst, .. } | EmitTag::Spill { vinst, .. } | EmitTag::Op { vinst } => {
            vinst
        }
    }
}

/// Machine-level successors (instruction granularity).
fn machine_succs(instrs: &[Instr], pc: usize) -> Vec<usize> {
    let n = instrs.len();
    match instrs[pc] {
        Instr::B { target } => vec![target as usize],
        Instr::Bcc { target, .. } | Instr::Cbz { target, .. } | Instr::Cbnz { target, .. } => {
            let mut v = vec![target as usize];
            if pc + 1 < n {
                v.push(pc + 1);
            }
            v
        }
        Instr::Halt => vec![],
        _ => {
            if pc + 1 < n {
                vec![pc + 1]
            } else {
                vec![]
            }
        }
    }
}

/// Validates `c` (compiled from `f`) against the pre-allocation IR,
/// running the symbolic passes plus one concrete cross-check per case.
pub fn validate(name: &str, f: &Function, c: &Compiled, cases: &[TvCase]) -> TvReport {
    let mut v: Vec<TvViolation> = Vec::new();
    check_emit_map(c, &mut v);
    check_coloring(c, &mut v);
    if v.iter().all(|x| x.kind != TvKind::EmitMapMismatch) {
        check_groups(c, &mut v);
        check_reaching_stores(c, &mut v);
    }
    check_frame_integrity(c, &mut v);
    let mut cases_run = 0usize;
    // Symbolically broken programs can loop or fault; only run the
    // concrete cross-check once the structural passes are clean.
    if v.is_empty() {
        for case in cases {
            check_concrete(f, c, case, &mut v);
            cases_run += 1;
        }
    }
    TvReport {
        name: name.to_string(),
        violations: v,
        cases_run,
    }
}

/// Pass 0: the witness itself must be coherent before it can be replayed.
fn check_emit_map(c: &Compiled, v: &mut Vec<TvViolation>) {
    if c.emit_map.len() != c.program.len() {
        v.push(TvViolation {
            kind: TvKind::EmitMapMismatch,
            pc: None,
            message: format!(
                "emit map covers {} instructions but the program has {}",
                c.emit_map.len(),
                c.program.len()
            ),
        });
        return;
    }
    let mut last = 0usize;
    for (pc, tag) in c.emit_map.iter().enumerate() {
        let vi = vinst_of(tag);
        if vi < last || vi >= c.vcode.len() {
            v.push(TvViolation {
                kind: TvKind::EmitMapMismatch,
                pc: Some(pc),
                message: format!(
                    "tag order broken: vinst {vi} after {last} (vcode len {})",
                    c.vcode.len()
                ),
            });
            return;
        }
        last = vi;
    }
}

/// Pass 1: recompute CFG-exact liveness and check the coloring against it.
fn check_coloring(c: &Compiled, v: &mut Vec<TvViolation>) {
    let df = VDataflow::compute(&c.vcode);
    let Ok(regs) = pool(c.budget) else {
        v.push(TvViolation {
            kind: TvKind::BadRegisterClass,
            pc: None,
            message: format!("budget {} has no register pool", c.budget),
        });
        return;
    };
    let pool_set: HashSet<Reg> = regs.into_iter().collect();

    // Every temp that appears must have a legal home.
    let mut seen: HashSet<u32> = HashSet::new();
    for inst in &c.vcode {
        seen.extend(inst.uses());
        seen.extend(inst.def());
    }
    for &t in &seen {
        match c.alloc.locs.get(&t) {
            Some(Loc::Reg(r)) if !pool_set.contains(r) => v.push(TvViolation {
                kind: TvKind::BadRegisterClass,
                pc: None,
                message: format!(
                    "t{t} allocated to {r}, outside the budget-{} pool",
                    c.budget
                ),
            }),
            Some(Loc::Slot(s)) if *s >= c.frame_slots => v.push(TvViolation {
                kind: TvKind::BadRegisterClass,
                pc: None,
                message: format!("t{t} in slot {s}, outside the {}-slot frame", c.frame_slots),
            }),
            None => v.push(TvViolation {
                kind: TvKind::BadRegisterClass,
                pc: None,
                message: format!("t{t} has no location"),
            }),
            _ => {}
        }
    }

    // Definitions must not clobber live temps sharing the register.
    for (pc, inst) in c.vcode.iter().enumerate() {
        let Some(d) = inst.def() else { continue };
        let Some(&Loc::Reg(rd)) = c.alloc.locs.get(&d) else {
            continue;
        };
        for t in df.live_out[pc].iter() {
            if t == d {
                continue;
            }
            if let Some(&Loc::Reg(rt)) = c.alloc.locs.get(&t) {
                if rt == rd {
                    v.push(TvViolation {
                        kind: TvKind::ColoringConflict,
                        pc: None,
                        message: format!(
                            "def of t{d} at vinst {pc} clobbers t{t}, live-out in the same {rd}"
                        ),
                    });
                }
            }
        }
    }
}

/// Pass 2 + 4: per-group structural replay — uses read homes, defs write
/// homes, scratch stays inside the group, opcodes match the IR.
fn check_groups(c: &Compiled, v: &mut Vec<TvViolation>) {
    let instrs = c.program.instrs();

    // Machine start PC of each virtual instruction (for branch targets):
    // the first machine instruction whose tag index is >= vi.
    let mut starts = vec![instrs.len(); c.vcode.len() + 1];
    for pc in (0..instrs.len()).rev() {
        let vi = vinst_of(&c.emit_map[pc]);
        for s in starts.iter_mut().take(vi + 1) {
            if *s > pc {
                *s = pc;
            }
        }
    }
    let label_start = |target: u32| -> Option<usize> {
        c.vcode
            .iter()
            .position(|i| matches!(i, VInst::Label(l) if *l == target))
            .map(|li| starts[li])
    };

    // Group the machine instructions by their virtual-instruction index.
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for pc in 0..instrs.len() {
        groups
            .entry(vinst_of(&c.emit_map[pc]))
            .or_default()
            .push(pc);
    }

    for (vi, vinst) in c.vcode.iter().enumerate() {
        let pcs = groups.get(&vi).cloned().unwrap_or_default();
        let group_pc = pcs.first().copied();

        // Collect and shape-check the group's reloads and writebacks;
        // build the in-group scratch map (temp -> scratch register).
        let mut scratch: HashMap<u32, Reg> = HashMap::new();
        let mut spill_tag: Option<(usize, u32, u32)> = None; // (pc, temp, slot)
        let mut ops: Vec<usize> = Vec::new();
        for &pc in &pcs {
            match c.emit_map[pc] {
                EmitTag::Reload { temp, .. } => {
                    let Instr::Ldr {
                        dst,
                        base,
                        offset: MemOffset::Imm(off),
                        size: AccessSize::B8,
                    } = instrs[pc]
                    else {
                        v.push(TvViolation {
                            kind: TvKind::MalformedSpill,
                            pc: Some(pc),
                            message: format!(
                                "tagged reload of t{temp} is not a 64-bit frame load: {}",
                                instrs[pc]
                            ),
                        });
                        continue;
                    };
                    if base != FRAME_PTR || !is_scratch(dst) || off < 0 || off % 8 != 0 {
                        v.push(TvViolation {
                            kind: TvKind::MalformedSpill,
                            pc: Some(pc),
                            message: format!(
                                "reload of t{temp} must load a scratch register from the frame \
                                 pointer: {}",
                                instrs[pc]
                            ),
                        });
                        continue;
                    }
                    let read_slot = (off / 8) as u32;
                    match c.alloc.locs.get(&temp) {
                        Some(&Loc::Slot(home)) if home == read_slot => {
                            scratch.insert(temp, dst);
                        }
                        Some(&Loc::Slot(home)) => v.push(TvViolation {
                            kind: TvKind::SpillSlotMismatch,
                            pc: Some(pc),
                            message: format!(
                                "reload of t{temp} reads frame slot {read_slot} but t{temp} \
                                 lives in frame slot {home}"
                            ),
                        }),
                        _ => v.push(TvViolation {
                            kind: TvKind::SpillSlotMismatch,
                            pc: Some(pc),
                            message: format!("reload of t{temp}, which is not slot-resident"),
                        }),
                    }
                }
                EmitTag::Spill { temp, slot, .. } => {
                    if spill_tag.is_some() {
                        v.push(TvViolation {
                            kind: TvKind::MalformedSpill,
                            pc: Some(pc),
                            message: "more than one writeback in a group".into(),
                        });
                    }
                    spill_tag = Some((pc, temp, slot));
                }
                EmitTag::Op { .. } => ops.push(pc),
            }
        }

        // Resolve the register carrying a used temp.
        let use_reg = |t: u32, v: &mut Vec<TvViolation>| -> Option<Reg> {
            match c.alloc.locs.get(&t) {
                Some(&Loc::Reg(r)) => Some(r),
                Some(&Loc::Slot(_)) => {
                    let r = scratch.get(&t).copied();
                    if r.is_none() {
                        v.push(TvViolation {
                            kind: TvKind::OperandMismatch,
                            pc: group_pc,
                            message: format!(
                                "vinst {vi} uses spilled t{t} with no in-group reload"
                            ),
                        });
                    }
                    r
                }
                None => None,
            }
        };

        // Resolve the register a defined temp must be computed into, and
        // shape-check the writeback when it lives in the frame.
        let def_reg = |d: u32, v: &mut Vec<TvViolation>| -> Option<Reg> {
            match c.alloc.locs.get(&d) {
                Some(&Loc::Reg(r)) => {
                    if let Some((pc, t, _)) = spill_tag {
                        v.push(TvViolation {
                            kind: TvKind::MalformedSpill,
                            pc: Some(pc),
                            message: format!(
                                "writeback of t{t} in a group whose def t{d} is register-resident"
                            ),
                        });
                    }
                    Some(r)
                }
                Some(&Loc::Slot(home)) => {
                    let Some((pc, t, _)) = spill_tag else {
                        v.push(TvViolation {
                            kind: TvKind::MalformedSpill,
                            pc: group_pc,
                            message: format!(
                                "def of slot-resident t{d} at vinst {vi} has no writeback"
                            ),
                        });
                        return None;
                    };
                    if t != d {
                        v.push(TvViolation {
                            kind: TvKind::SpillSlotMismatch,
                            pc: Some(pc),
                            message: format!("writeback of t{t} in the group defining t{d}"),
                        });
                        return None;
                    }
                    let Instr::Str {
                        src,
                        base,
                        offset: MemOffset::Imm(off),
                        size: AccessSize::B8,
                    } = instrs[pc]
                    else {
                        v.push(TvViolation {
                            kind: TvKind::MalformedSpill,
                            pc: Some(pc),
                            message: format!(
                                "tagged writeback of t{t} is not a 64-bit frame store: {}",
                                instrs[pc]
                            ),
                        });
                        return None;
                    };
                    if base != FRAME_PTR || !is_scratch(src) || off < 0 || off % 8 != 0 {
                        v.push(TvViolation {
                            kind: TvKind::MalformedSpill,
                            pc: Some(pc),
                            message: format!(
                                "writeback of t{t} must store a scratch register through the \
                                 frame pointer: {}",
                                instrs[pc]
                            ),
                        });
                        return None;
                    }
                    let written = (off / 8) as u32;
                    if written != home {
                        v.push(TvViolation {
                            kind: TvKind::SpillSlotMismatch,
                            pc: Some(pc),
                            message: format!(
                                "writeback of t{t} writes frame slot {written} but t{t} lives \
                                 in frame slot {home}"
                            ),
                        });
                    }
                    Some(src)
                }
                None => None,
            }
        };

        // Expected machine code for this virtual instruction.
        let mismatch = |pc: Option<usize>, kind: TvKind, msg: String, v: &mut Vec<TvViolation>| {
            v.push(TvViolation {
                kind,
                pc,
                message: msg,
            })
        };
        let mut expected: Vec<Instr> = Vec::new();
        let mut expect_ok = true;
        match *vinst {
            VInst::Param { dst, index } => {
                let abi = Reg::new(index as u8);
                match def_reg(dst, v) {
                    Some(r) if r != abi => expected.push(Instr::Alu {
                        op: AluOp::Orr,
                        dst: r,
                        src: abi,
                        rhs: Operand2::Imm(0),
                    }),
                    Some(_) => {}
                    None => expect_ok = false,
                }
            }
            VInst::MovImm { dst, imm } => match def_reg(dst, v) {
                Some(r) => expected.push(Instr::MovImm { dst: r, imm }),
                None => expect_ok = false,
            },
            VInst::Mov { dst, src } => {
                let s = use_reg(src, v);
                match (def_reg(dst, v), s) {
                    (Some(r), Some(s)) if r != s => expected.push(Instr::Alu {
                        op: AluOp::Orr,
                        dst: r,
                        src: s,
                        rhs: Operand2::Imm(0),
                    }),
                    (Some(_), Some(_)) => {}
                    _ => expect_ok = false,
                }
            }
            VInst::Bin { op, dst, a, b } => {
                let ar = use_reg(a, v);
                let rhs = match b {
                    VOp::Temp(t) => use_reg(t, v).map(Operand2::Reg),
                    VOp::Imm(i) => Some(Operand2::Imm(i)),
                };
                match (def_reg(dst, v), ar, rhs) {
                    (Some(r), Some(ar), Some(rhs)) => expected.push(Instr::Alu {
                        op: alu_of(op),
                        dst: r,
                        src: ar,
                        rhs,
                    }),
                    _ => expect_ok = false,
                }
            }
            VInst::Load { dst, base, index } => {
                let br = use_reg(base, v);
                let off = match index {
                    VIndex::Temp(t) => {
                        use_reg(t, v).map(|i| MemOffset::RegShifted { index: i, shift: 3 })
                    }
                    VIndex::ByteOff(o) => Some(MemOffset::Imm(o)),
                };
                match (def_reg(dst, v), br, off) {
                    (Some(r), Some(br), Some(off)) => expected.push(Instr::Ldr {
                        dst: r,
                        base: br,
                        offset: off,
                        size: AccessSize::B8,
                    }),
                    _ => expect_ok = false,
                }
            }
            VInst::Store { src, base, index } => {
                let sr = use_reg(src, v);
                let br = use_reg(base, v);
                let off = match index {
                    VIndex::Temp(t) => {
                        use_reg(t, v).map(|i| MemOffset::RegShifted { index: i, shift: 3 })
                    }
                    VIndex::ByteOff(o) => Some(MemOffset::Imm(o)),
                };
                match (sr, br, off) {
                    (Some(sr), Some(br), Some(off)) => expected.push(Instr::Str {
                        src: sr,
                        base: br,
                        offset: off,
                        size: AccessSize::B8,
                    }),
                    _ => expect_ok = false,
                }
            }
            VInst::Cmp { a, b } => {
                let ar = use_reg(a, v);
                let rhs = match b {
                    VOp::Temp(t) => use_reg(t, v).map(Operand2::Reg),
                    VOp::Imm(i) => Some(Operand2::Imm(i)),
                };
                match (ar, rhs) {
                    (Some(ar), Some(rhs)) => expected.push(Instr::Cmp { src: ar, rhs }),
                    _ => expect_ok = false,
                }
            }
            VInst::Bcc { cond, target } => match label_start(target) {
                Some(t) => expected.push(Instr::Bcc {
                    cond,
                    target: t as u32,
                }),
                None => {
                    mismatch(
                        group_pc,
                        TvKind::BranchMismatch,
                        format!("vinst {vi} branches to unknown label L{target}"),
                        v,
                    );
                    expect_ok = false;
                }
            },
            VInst::B { target } => match label_start(target) {
                Some(t) => expected.push(Instr::B { target: t as u32 }),
                None => {
                    mismatch(
                        group_pc,
                        TvKind::BranchMismatch,
                        format!("vinst {vi} branches to unknown label L{target}"),
                        v,
                    );
                    expect_ok = false;
                }
            },
            VInst::Label(_) => {}
            VInst::Ret { src } => match use_reg(src, v) {
                Some(s) => {
                    if s != Reg::new(0) {
                        expected.push(Instr::Alu {
                            op: AluOp::Orr,
                            dst: Reg::new(0),
                            src: s,
                            rhs: Operand2::Imm(0),
                        });
                    }
                    expected.push(Instr::Halt);
                }
                None => expect_ok = false,
            },
        }

        if expect_ok {
            if ops.len() != expected.len() {
                mismatch(
                    group_pc,
                    TvKind::OpcodeMismatch,
                    format!(
                        "vinst {vi} ({vinst:?}) emitted {} op instruction(s), expected {}",
                        ops.len(),
                        expected.len()
                    ),
                    v,
                );
            } else {
                for (&pc, want) in ops.iter().zip(&expected) {
                    let got = instrs[pc];
                    if got != *want {
                        let kind = if std::mem::discriminant(&got) != std::mem::discriminant(want) {
                            TvKind::OpcodeMismatch
                        } else if matches!(got, Instr::B { .. } | Instr::Bcc { .. }) {
                            TvKind::BranchMismatch
                        } else {
                            TvKind::OperandMismatch
                        };
                        mismatch(
                            Some(pc),
                            kind,
                            format!("vinst {vi} ({vinst:?}): emitted `{got}`, expected `{want}`"),
                            v,
                        );
                    }
                }
            }
        }

        // Scratch containment: reads legal only after an in-group def.
        let mut defined: HashSet<Reg> = HashSet::new();
        for &pc in &pcs {
            for r in instrs[pc].srcs().iter() {
                if is_scratch(r) && !defined.contains(&r) {
                    v.push(TvViolation {
                        kind: TvKind::ScratchEscape,
                        pc: Some(pc),
                        message: format!(
                            "{r} read in vinst {vi}'s group without an in-group definition"
                        ),
                    });
                }
            }
            for r in instrs[pc].dsts().iter() {
                if is_scratch(r) {
                    defined.insert(r);
                }
            }
        }
    }
}

/// Pass 3: forward reaching-stores dataflow over the machine CFG — every
/// reload of `Slot(s)` must be reached only by writebacks of its own temp,
/// and by at least one on every path.
fn check_reaching_stores(c: &Compiled, v: &mut Vec<TvViolation>) {
    let instrs = c.program.instrs();
    let n = instrs.len();
    let nslots = c.frame_slots as usize;
    if nslots == 0 || n == 0 {
        return;
    }
    // state[pc][slot] = set of writers that may reach pc (None = uninit).
    type SlotState = Vec<HashSet<Option<u32>>>;
    let entry: SlotState = (0..nslots).map(|_| HashSet::from([None])).collect();
    let empty: SlotState = vec![HashSet::new(); nslots];
    let mut state_in: Vec<SlotState> = vec![empty; n];
    state_in[0] = entry;

    let transfer = |pc: usize, mut s: SlotState| -> SlotState {
        if let EmitTag::Spill { temp, slot, .. } = c.emit_map[pc] {
            if (slot as usize) < nslots {
                s[slot as usize] = HashSet::from([Some(temp)]);
            }
        }
        s
    };

    let mut changed = true;
    while changed {
        changed = false;
        for pc in 0..n {
            let out = transfer(pc, state_in[pc].clone());
            for succ in machine_succs(instrs, pc) {
                for (slot, writers) in out.iter().enumerate() {
                    for w in writers {
                        if state_in[succ][slot].insert(*w) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    for (pc, slots) in state_in.iter().enumerate() {
        let EmitTag::Reload { temp, slot, .. } = c.emit_map[pc] else {
            continue;
        };
        if (slot as usize) >= nslots {
            continue; // already reported by the group pass
        }
        for w in &slots[slot as usize] {
            match w {
                None => v.push(TvViolation {
                    kind: TvKind::UninitReload,
                    pc: Some(pc),
                    message: format!(
                        "a path reaches this reload of t{temp} with frame slot {slot} unwritten"
                    ),
                }),
                Some(other) if *other != temp => v.push(TvViolation {
                    kind: TvKind::StaleReload,
                    pc: Some(pc),
                    message: format!(
                        "a writeback of t{other} reaches this reload of t{temp} in slot {slot}"
                    ),
                }),
                _ => {}
            }
        }
    }
}

/// Pass 5: the frame pointer is sacred and the frame is private to tagged
/// spill traffic.
fn check_frame_integrity(c: &Compiled, v: &mut Vec<TvViolation>) {
    let instrs = c.program.instrs();
    for (pc, inst) in instrs.iter().enumerate() {
        if inst.dsts().iter().any(|r| r == FRAME_PTR) {
            v.push(TvViolation {
                kind: TvKind::FrameClobber,
                pc: Some(pc),
                message: format!("the frame pointer {FRAME_PTR} is written: {inst}"),
            });
        }
        let tagged = c
            .emit_map
            .get(pc)
            .is_some_and(|t| !matches!(t, EmitTag::Op { .. }));
        match *inst {
            Instr::Ldr { base, offset, .. } | Instr::Str { base, offset, .. }
                if base == FRAME_PTR =>
            {
                if !tagged {
                    v.push(TvViolation {
                        kind: TvKind::FrameClobber,
                        pc: Some(pc),
                        message: format!("untagged frame access: {inst}"),
                    });
                }
                match offset {
                    MemOffset::Imm(o) if o >= 0 && o % 8 == 0 && (o / 8) < c.frame_slots as i64 => {
                    }
                    _ => v.push(TvViolation {
                        kind: TvKind::FrameClobber,
                        pc: Some(pc),
                        message: format!(
                            "frame access outside the {}-slot frame: {inst}",
                            c.frame_slots
                        ),
                    }),
                }
            }
            _ => {}
        }
    }
}

/// Pass 6: concrete architectural-effect equivalence — IR interpreter vs
/// machine interpreter on one input, comparing the return value and all
/// memory outside the spill frame.
fn check_concrete(f: &Function, c: &Compiled, case: &TvCase, v: &mut Vec<TvViolation>) {
    let mut ir_mem = FlatMem::new(0, TV_MEM_SIZE as usize);
    let mut m_mem = FlatMem::new(0, TV_MEM_SIZE as usize);
    for &(addr, val) in &case.mem {
        ir_mem.write_u64(addr, val);
        m_mem.write_u64(addr, val);
    }
    let want = interpret(f, &case.args, &mut ir_mem, TV_MAX_STEPS).value;

    let mut ctx = ThreadCtx::new();
    for (i, &a) in case.args.iter().enumerate() {
        ctx.set(Reg::new(i as u8), a);
    }
    ctx.set(c.frame_reg, TV_FRAME_BASE);
    let out = Interpreter::new(&c.program, &mut m_mem).run(&mut ctx, TV_MAX_STEPS);
    if !matches!(out, ExecOutcome::Halted { .. }) {
        v.push(TvViolation {
            kind: TvKind::ResultDivergence,
            pc: None,
            message: format!("machine run did not halt within {TV_MAX_STEPS} steps"),
        });
        return;
    }
    let got = ctx.get(Reg::new(0));
    if got != want {
        v.push(TvViolation {
            kind: TvKind::ResultDivergence,
            pc: None,
            message: format!("returned {got:#x}, IR interpreter returned {want:#x}"),
        });
    }
    let frame_lo = TV_FRAME_BASE as usize;
    let frame_hi = frame_lo + 8 * c.frame_slots as usize;
    let (a, b) = (ir_mem.bytes(), m_mem.bytes());
    if a[..frame_lo] != b[..frame_lo] || a[frame_hi..] != b[frame_hi..] {
        let first = (0..a.len())
            .find(|&i| (i < frame_lo || i >= frame_hi) && a[i] != b[i])
            .unwrap_or(0);
        v.push(TvViolation {
            kind: TvKind::MemoryDivergence,
            pc: None,
            message: format!("memory diverges outside the frame, first at {first:#x}"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_cc::ir::{Cmp, Operand, Stmt};
    use virec_cc::{compile_with, AllocStrategy};

    fn gather() -> (Function, Vec<TvCase>) {
        let f = Function {
            name: "g".into(),
            params: vec![0, 1, 2],
            body: vec![
                Stmt::def_const(3, 0),
                Stmt::def_const(4, 0),
                Stmt::While {
                    cond: (Operand::Temp(4), Cmp::Lt, Operand::Temp(2)),
                    body: vec![
                        Stmt::Load {
                            dst: 5,
                            base: 1,
                            index: Operand::Temp(4),
                        },
                        Stmt::Load {
                            dst: 6,
                            base: 0,
                            index: Operand::Temp(5),
                        },
                        Stmt::def_bin(3, BinOp::Add, Operand::Temp(3), Operand::Temp(6)),
                        Stmt::def_bin(4, BinOp::Add, Operand::Temp(4), Operand::Const(1)),
                    ],
                },
                Stmt::Return {
                    value: Operand::Temp(3),
                },
            ],
        };
        let n = 16u64;
        let mut mem = Vec::new();
        for i in 0..n {
            mem.push((0x1000 + i * 8, i * 11));
            mem.push((0x2000 + i * 8, (i * 13) % n));
        }
        (
            f,
            vec![TvCase {
                args: vec![0x1000, 0x2000, n],
                mem,
            }],
        )
    }

    #[test]
    fn clean_compiles_validate_at_every_budget() {
        let (f, cases) = gather();
        for strategy in [AllocStrategy::GraphColor, AllocStrategy::LinearScan] {
            for budget in [1usize, 2, 3, 4, 6, 8, 10, 14, 17] {
                let c = compile_with(&f, budget, strategy).unwrap();
                let r = validate("g", &f, &c, &cases);
                assert!(
                    r.is_valid(),
                    "budget {budget}/{}:\n{}",
                    strategy.name(),
                    r.violations
                        .iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join("\n")
                );
                assert_eq!(r.cases_run, 1);
            }
        }
    }

    #[test]
    fn corrupted_reload_slot_is_rejected() {
        let (f, cases) = gather();
        let mut c = compile_with(&f, 2, AllocStrategy::GraphColor).unwrap();
        let pc = c
            .emit_map
            .iter()
            .position(|t| matches!(t, EmitTag::Reload { .. }))
            .expect("budget 2 spills");
        let Instr::Ldr {
            dst,
            base,
            offset: MemOffset::Imm(off),
            size,
        } = c.program.fetch(pc as u32)
        else {
            panic!("reload is a frame load");
        };
        c.program = c.program.patched(
            pc,
            Instr::Ldr {
                dst,
                base,
                offset: MemOffset::Imm(off + 8),
                size,
            },
        );
        let r = validate("g-broken", &f, &c, &cases);
        assert!(!r.is_valid());
        assert!(
            r.violations
                .iter()
                .any(|x| x.kind == TvKind::SpillSlotMismatch),
            "expected spill-slot-mismatch, got:\n{}",
            r.violations
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // Structural failure means the concrete pass never runs.
        assert_eq!(r.cases_run, 0);
    }

    #[test]
    fn clobbered_frame_pointer_is_rejected() {
        let (f, cases) = gather();
        let c0 = compile_with(&f, 4, AllocStrategy::GraphColor).unwrap();
        let mut c = c0;
        c.program = c.program.patched(
            0,
            Instr::MovImm {
                dst: FRAME_PTR,
                imm: 0,
            },
        );
        let r = validate("g-fp", &f, &c, &cases);
        assert!(r
            .violations
            .iter()
            .any(|x| x.kind == TvKind::FrameClobber || x.kind == TvKind::OpcodeMismatch));
    }

    #[test]
    fn wrong_alu_op_is_rejected() {
        let (f, cases) = gather();
        let mut c = compile_with(&f, 17, AllocStrategy::GraphColor).unwrap();
        let pc = c
            .program
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Alu { op: AluOp::Add, .. }))
            .expect("gather adds");
        let Instr::Alu { dst, src, rhs, .. } = c.program.fetch(pc as u32) else {
            unreachable!()
        };
        c.program = c.program.patched(
            pc,
            Instr::Alu {
                op: AluOp::Sub,
                dst,
                src,
                rhs,
            },
        );
        let r = validate("g-alu", &f, &c, &cases);
        assert!(r
            .violations
            .iter()
            .any(|x| x.kind == TvKind::OperandMismatch || x.kind == TvKind::OpcodeMismatch));
    }
}
