//! Area cost of the in-situ protection model (SEC-DED on word storage,
//! parity on the VRMU CAM structures), layered over [`AreaModel`].
//!
//! The storage terms follow directly from the code geometry: the (72,64)
//! extended Hamming code spends 8 check bits per 64 data bits — a fixed
//! **12.5%** on every protected word array — and the CAM structures carry
//! one parity bit per entry. The logic terms (encoder/corrector trees at
//! the RF ports, parity trees at the CAM write/lookup paths) are small
//! fixed blocks calibrated to 45 nm synthesis of comparable Hsiao codecs.
//!
//! The headline consequence mirrors the paper's area argument: because
//! ViReC keeps the register file *small* (5–10 registers per thread), full
//! SEC-DED over its RF costs far less absolute silicon than protecting a
//! banked design's 64-registers-per-thread banks — the protection gap
//! widens with thread count exactly as the unprotected area gap does, and
//! the extra parity ViReC pays on its tag store / rollback queue does not
//! close it.

use crate::model::AreaModel;

/// Fraction of a SEC-DED-protected word array spent on check bits:
/// 8 check bits per 64 data bits in the (72,64) code.
pub const SECDED_STORAGE_FRAC: f64 = 8.0 / 64.0;

/// Fraction of a parity-protected CAM array spent on the parity column.
/// A tag-store entry holds a 5-bit architectural name, a thread id, a
/// physical index and a valid bit (≈13 bits), so one parity bit adds
/// roughly 1/13 of the entry.
pub const PARITY_STORAGE_FRAC: f64 = 1.0 / 13.0;

/// ECC overhead of one engine, split into its two components (mm²).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EccOverhead {
    /// Extra storage cells: check-bit columns widening the protected
    /// arrays.
    pub storage_mm2: f64,
    /// Codec logic: encoder/corrector trees at the word-array ports and
    /// parity trees at the CAM paths.
    pub logic_mm2: f64,
}

impl EccOverhead {
    /// Total ECC silicon for the engine.
    pub fn total_mm2(&self) -> f64 {
        self.storage_mm2 + self.logic_mm2
    }
}

/// Analytic model of the protection hardware, parameterized so the codec
/// constants can be recalibrated independently of [`AreaModel`].
#[derive(Clone, Copy, Debug)]
pub struct EccAreaModel {
    /// One (72,64) Hsiao encoder + corrector tree per RF port (mm²).
    pub secded_codec_mm2: f64,
    /// Parity generate/check tree for one CAM structure (mm²).
    pub parity_logic_mm2: f64,
    /// Register-file ports carrying a codec (reads correct, writes encode).
    pub rf_ports: usize,
}

impl Default for EccAreaModel {
    fn default() -> Self {
        EccAreaModel {
            secded_codec_mm2: 2.0e-3,
            parity_logic_mm2: 4.0e-4,
            rf_ports: 3,
        }
    }
}

impl EccAreaModel {
    /// Codec logic shared by every word-protected register organization:
    /// one encoder/corrector per RF port.
    fn word_codec_mm2(&self) -> f64 {
        self.secded_codec_mm2 * self.rf_ports as f64
    }

    /// ECC overhead for a ViReC core with `regs` physical registers:
    /// SEC-DED over the (small) RF, parity over the tag-store CAM and the
    /// rollback queue, plus their codec trees.
    pub fn virec_overhead(&self, area: &AreaModel, regs: usize) -> EccOverhead {
        let secded_storage = SECDED_STORAGE_FRAC * area.rf_area(regs);
        let parity_storage =
            PARITY_STORAGE_FRAC * (area.tag_store_area(regs) + area.vrmu_logic_area(regs));
        EccOverhead {
            storage_mm2: secded_storage + parity_storage,
            // Two parity trees: the tag store and the rollback queue.
            logic_mm2: self.word_codec_mm2() + 2.0 * self.parity_logic_mm2,
        }
    }

    /// ECC overhead for a banked core with `threads` banks of 64
    /// registers: SEC-DED over every bank. Only one bank drives the shared
    /// read/write ports at a time, so the codec trees are shared and do
    /// not scale with thread count — the storage term does.
    pub fn banked_overhead(&self, area: &AreaModel, threads: usize) -> EccOverhead {
        EccOverhead {
            storage_mm2: SECDED_STORAGE_FRAC * area.bank_mm2 * threads as f64,
            logic_mm2: self.word_codec_mm2(),
        }
    }

    /// Protected ViReC core area (base + virec overhead + ECC).
    pub fn virec_core(&self, area: &AreaModel, regs: usize) -> f64 {
        area.virec_core(regs) + self.virec_overhead(area, regs).total_mm2()
    }

    /// Protected banked core area (base + banks + ECC).
    pub fn banked_core(&self, area: &AreaModel, threads: usize) -> f64 {
        area.banked_core(threads) + self.banked_overhead(area, threads).total_mm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (AreaModel, EccAreaModel) {
        (AreaModel::default(), EccAreaModel::default())
    }

    #[test]
    fn secded_storage_is_exactly_one_eighth() {
        // 8 check bits per 64 data bits — the geometry is not tunable.
        assert_eq!(SECDED_STORAGE_FRAC, 0.125);
        let (a, e) = models();
        let banked = e.banked_overhead(&a, 8);
        assert!((banked.storage_mm2 - 0.125 * a.bank_mm2 * 8.0).abs() < 1e-12);
    }

    #[test]
    fn virec_protection_is_cheaper_than_banked_at_paper_points() {
        // 8 registers per thread vs 64-per-bank: the small RF keeps the
        // absolute ECC bill lower even though ViReC also pays parity on
        // the CAM structures.
        let (a, e) = models();
        for threads in [8, 16] {
            let v = e.virec_overhead(&a, 8 * threads).total_mm2();
            let b = e.banked_overhead(&a, threads).total_mm2();
            assert!(v < b, "{threads} threads: virec {v} vs banked {b}");
        }
    }

    #[test]
    fn protection_gap_widens_with_threads() {
        let (a, e) = models();
        let gap = |t: usize| {
            e.banked_overhead(&a, t).total_mm2() - e.virec_overhead(&a, 8 * t).total_mm2()
        };
        assert!(gap(16) > gap(8));
        assert!(gap(8) > gap(4));
    }

    #[test]
    fn ecc_stays_a_small_fraction_of_the_core() {
        // Full protection must not distort the paper's area story. ViReC's
        // RF is small, so its ECC bill stays under 4% of the protected
        // core; banked pays 12.5% on every 64-register bank, which lands
        // at 5–7% of its (much larger) core at 8–16 threads.
        let (a, e) = models();
        for threads in [8, 16] {
            let v = e.virec_overhead(&a, 8 * threads).total_mm2() / e.virec_core(&a, 8 * threads);
            let b = e.banked_overhead(&a, threads).total_mm2() / e.banked_core(&a, threads);
            assert!(v < 0.04, "virec fraction {v}");
            assert!(b < 0.08, "banked fraction {b}");
            assert!(v < b, "protection must tax virec less than banked");
        }
    }

    #[test]
    fn virec_area_advantage_survives_protection() {
        // The paper's ≈40% savings claim with both designs protected.
        let (a, e) = models();
        let savings = 1.0 - e.virec_core(&a, 64) / e.banked_core(&a, 8);
        assert!((0.35..=0.45).contains(&savings), "got {savings}");
    }
}
