//! Area cost of the RAS layer (patrol scrubber, CE trackers, spare
//! rows/ways, remap CAM), layered over [`AreaModel`] and the ECC model —
//! answering the ISSUE-8 question: does full protection **plus** sparing
//! still widen ViReC's area win over banked?
//!
//! The spare-way term is priced at the *marginal* silicon of widening the
//! VRMU structures by `spare_ways` physical ways (the spares are real ways,
//! pre-masked until a retirement activates them — see
//! `TagStore::with_spares`), so it inherits the tag store's superlinear
//! CAM exponent. Spare DRAM rows live on the memory die, not the logic
//! die; what the core-side model prices is the **remap CAM** in front of
//! the row decoder (one entry per retirable row) and the steering muxes.
//! The scrubber itself is a tiny fixed FSM (address counter + compare),
//! and the CE trackers are one small saturating counter per tracked
//! region.

use crate::ecc::EccAreaModel;
use crate::model::AreaModel;

/// RAS overhead of one engine, split into its components (mm²).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RasOverhead {
    /// Marginal storage of the spare ways (CAM entries + backing
    /// registers held in reserve). Zero for engines without a VRMU.
    pub spare_way_mm2: f64,
    /// Remap CAM + row-steering muxes for the spare-row pool.
    pub remap_mm2: f64,
    /// Patrol-scrubber FSM (address counter, schedule compare, one
    /// read-modify-write buffer).
    pub scrubber_mm2: f64,
    /// Leaky-bucket CE counters, one per tracked region.
    pub trackers_mm2: f64,
}

impl RasOverhead {
    /// Total RAS silicon for the engine.
    pub fn total_mm2(&self) -> f64 {
        self.spare_way_mm2 + self.remap_mm2 + self.scrubber_mm2 + self.trackers_mm2
    }
}

/// Analytic model of the RAS hardware, parameterized like
/// [`EccAreaModel`] so the constants can be recalibrated independently.
#[derive(Clone, Copy, Debug)]
pub struct RasAreaModel {
    /// One remap-CAM entry plus its steering mux share (mm²). Calibrated
    /// to a 48-bit match + 40-bit payload CAM row at 45 nm.
    pub remap_entry_mm2: f64,
    /// The patrol scrubber's fixed FSM block (mm²).
    pub scrubber_mm2: f64,
    /// One leaky-bucket CE counter: a few-bit saturating counter plus
    /// threshold compare (mm²).
    pub tracker_mm2: f64,
    /// Spare DRAM rows provisioned (remap CAM entries).
    pub spare_rows: usize,
    /// Spare VRMU ways provisioned per core.
    pub spare_ways: usize,
    /// Regions with a dedicated CE tracker (banks + CAM ways sharing a
    /// small tracker file).
    pub tracked_regions: usize,
}

impl Default for RasAreaModel {
    fn default() -> Self {
        RasAreaModel {
            remap_entry_mm2: 3.0e-4,
            scrubber_mm2: 1.5e-3,
            tracker_mm2: 1.0e-4,
            spare_rows: 4,
            spare_ways: 2,
            tracked_regions: 16,
        }
    }
}

impl RasAreaModel {
    /// RAS blocks every engine pays regardless of register organization:
    /// the remap CAM, the scrubber, and the CE tracker file.
    fn common(&self) -> RasOverhead {
        RasOverhead {
            spare_way_mm2: 0.0,
            remap_mm2: self.remap_entry_mm2 * self.spare_rows as f64,
            scrubber_mm2: self.scrubber_mm2,
            trackers_mm2: self.tracker_mm2 * self.tracked_regions as f64,
        }
    }

    /// RAS overhead for a ViReC core with `regs` in-service physical
    /// registers: the common blocks plus the marginal cost of carrying
    /// `spare_ways` extra (masked) ways through the RF, tag store, and
    /// VRMU logic.
    pub fn virec_overhead(&self, area: &AreaModel, regs: usize) -> RasOverhead {
        let wide = regs + self.spare_ways;
        let marginal = |f: &dyn Fn(usize) -> f64| f(wide) - f(regs);
        RasOverhead {
            spare_way_mm2: marginal(&|r| area.rf_area(r))
                + marginal(&|r| area.tag_store_area(r))
                + marginal(&|r| area.vrmu_logic_area(r)),
            ..self.common()
        }
    }

    /// RAS overhead for a banked core: no CAM ways to spare (a failed
    /// bank entry retires through the row-remap path instead), so only
    /// the common blocks.
    pub fn banked_overhead(&self, _area: &AreaModel, _threads: usize) -> RasOverhead {
        self.common()
    }

    /// Fully-protected ViReC core: base + VRMU + ECC + RAS.
    pub fn virec_core(&self, area: &AreaModel, ecc: &EccAreaModel, regs: usize) -> f64 {
        ecc.virec_core(area, regs) + self.virec_overhead(area, regs).total_mm2()
    }

    /// Fully-protected banked core: base + banks + ECC + RAS.
    pub fn banked_core(&self, area: &AreaModel, ecc: &EccAreaModel, threads: usize) -> f64 {
        ecc.banked_core(area, threads) + self.banked_overhead(area, threads).total_mm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (AreaModel, EccAreaModel, RasAreaModel) {
        (
            AreaModel::default(),
            EccAreaModel::default(),
            RasAreaModel::default(),
        )
    }

    #[test]
    fn spare_ways_are_priced_at_the_cam_margin() {
        // Two spare ways must cost exactly what growing the VRMU by two
        // ways costs — no more, no less.
        let (a, _, r) = models();
        let o = r.virec_overhead(&a, 64);
        let expected = (a.rf_area(66) - a.rf_area(64))
            + (a.tag_store_area(66) - a.tag_store_area(64))
            + (a.vrmu_logic_area(66) - a.vrmu_logic_area(64));
        assert!((o.spare_way_mm2 - expected).abs() < 1e-12);
    }

    #[test]
    fn ras_stays_a_small_fraction_of_the_protected_core() {
        let (a, e, r) = models();
        for threads in [8usize, 16] {
            let regs = 8 * threads;
            let v = r.virec_overhead(&a, regs).total_mm2() / r.virec_core(&a, &e, regs);
            let b = r.banked_overhead(&a, threads).total_mm2() / r.banked_core(&a, &e, threads);
            assert!(v < 0.03, "virec ras fraction {v}");
            assert!(b < 0.03, "banked ras fraction {b}");
        }
    }

    #[test]
    fn area_win_survives_full_protection_and_sparing() {
        // The ISSUE-8 question: with SEC-DED + parity + spares + scrubber
        // + remap CAM on BOTH designs, ViReC's ≈40% savings claim holds.
        let (a, e, r) = models();
        let savings = 1.0 - r.virec_core(&a, &e, 64) / r.banked_core(&a, &e, 8);
        assert!((0.35..=0.45).contains(&savings), "got {savings}");
    }

    #[test]
    fn ras_gap_does_not_close_the_protection_gap() {
        // ViReC pays more RAS silicon than banked (it spares CAM ways the
        // banked design doesn't have) — but the extra must stay far below
        // the protection gap it would need to close.
        let (a, e, r) = models();
        for threads in [8usize, 16] {
            let regs = 8 * threads;
            let ras_extra =
                r.virec_overhead(&a, regs).total_mm2() - r.banked_overhead(&a, threads).total_mm2();
            let ecc_gap =
                e.banked_overhead(&a, threads).total_mm2() - e.virec_overhead(&a, regs).total_mm2();
            assert!(
                ras_extra < 0.5 * ecc_gap,
                "{threads} threads: ras extra {ras_extra} vs ecc gap {ecc_gap}"
            );
        }
    }
}
