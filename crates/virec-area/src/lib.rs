#![warn(missing_docs)]

//! # virec-area
//!
//! Analytic area and delay model for ViReC and the baseline register-file
//! organizations, standing in for the paper's CACTI + 45 nm synthesis flow
//! (§6.2). The model's functional forms follow the paper's qualitative
//! findings and its constants are calibrated to the reported numbers:
//!
//! * a banked core needs **2.8–3.9 mm²** at 8–16 threads (64 registers per
//!   bank), while a ViReC core with 8 registers per thread needs **1.7 mm²**
//!   — a **20% overhead** over the baseline core and **≈40% savings** over
//!   banked;
//! * most ViReC overhead is the VRMU **tag store** (a fully associative
//!   CAM) and the RF; the rollback queue and remaining VRMU logic are
//!   **< 10% of the RF size**;
//! * the tag store scales **superlinearly**, so storing large or complete
//!   contexts in ViReC costs more than banking — ViReC wins only because
//!   memory-intensive workloads need 5–10 registers per thread;
//! * RF delay: a baseline 32-entry RF reads in **0.22 ns**; an 80-entry
//!   ViReC RF in **≈0.24 ns** (~10% overhead), equivalent to a similarly
//!   threaded banked RF;
//! * the OoO comparison point (Arm N1-like) costs **19.1×** the single
//!   in-order core's area.
//!
//! All areas are mm² at 45 nm; delays are ns.
//!
//! The [`ecc`] module layers the in-situ protection hardware on top: a
//! fixed 12.5% storage tax on SEC-DED-protected word arrays, one parity
//! bit per CAM entry, and small fixed codec blocks — with the headline
//! that protecting ViReC's small RF costs far less silicon than
//! protecting a banked design's per-thread banks.
//!
//! The [`ras`] module prices the permanent-fault survival hardware (spare
//! VRMU ways at the CAM margin, the spare-row remap CAM, the patrol
//! scrubber FSM, and the CE tracker file) — and shows the ≈40% area win
//! holds with protection *and* sparing on both designs.
//!
//! The [`noc`] module prices the fault-tolerant mesh fabric (5-port
//! wormhole routers, per-link CRC-16 pairs, and retransmission buffers)
//! against the crossbar it replaces — the protected mesh stays under 2%
//! of the core area it connects.

pub mod ecc;
pub mod model;
pub mod noc;
pub mod ras;

pub use ecc::{EccAreaModel, EccOverhead, PARITY_STORAGE_FRAC, SECDED_STORAGE_FRAC};
pub use model::AreaModel;
pub use noc::{NocAreaModel, NocOverhead, BUF_FLITS_PER_PORT, RETX_FLITS_PER_LINK};
pub use ras::{RasAreaModel, RasOverhead};
