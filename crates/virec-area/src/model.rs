//! The analytic model. See the crate docs for the calibration targets.

/// Area/delay model with tunable constants (defaults are calibrated to the
/// paper's 45 nm numbers).
///
/// ```
/// use virec_area::AreaModel;
/// let m = AreaModel::default();
/// // ViReC with 8 registers per thread at 8 threads vs a banked core:
/// let savings = 1.0 - m.virec_core(64) / m.banked_core(8);
/// assert!(savings > 0.35);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AreaModel {
    /// Core area excluding register storage (pipeline, caches, control).
    pub base_core_mm2: f64,
    /// Fixed overhead of the banked organization (bank select / mux /
    /// thread-ID plumbing).
    pub banked_fixed_mm2: f64,
    /// Area per 64-register bank (includes the FP half of Table 1's
    /// 32/32 banks).
    pub bank_mm2: f64,
    /// ViReC RF area per physical register.
    pub rf_per_reg_mm2: f64,
    /// Tag-store CAM coefficient (multiplies `regs^TAG_EXP`).
    pub tag_coeff_mm2: f64,
    /// Rollback queue + misc VRMU logic, as a fraction of RF area (< 0.1).
    pub vrmu_logic_frac: f64,
    /// Out-of-order core area multiplier over the single in-order core
    /// (Arm N1 vs CVA6, from \[43\]).
    pub ooo_multiplier: f64,
    /// Baseline 32-entry RF read delay (ns).
    pub rf_delay_base_ns: f64,
    /// ViReC RF delay growth coefficient (× sqrt(regs)).
    pub rf_delay_sqrt_ns: f64,
    /// Banked RF delay growth per bank (ns).
    pub bank_delay_ns: f64,
}

/// Superlinear exponent of the fully associative tag store.
pub const TAG_EXP: f64 = 1.6;

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            base_core_mm2: 1.42,
            banked_fixed_mm2: 0.28,
            bank_mm2: 0.1375,
            rf_per_reg_mm2: 2.0e-3,
            tag_coeff_mm2: 1.30e-4,
            vrmu_logic_frac: 0.09,
            ooo_multiplier: 19.1,
            rf_delay_base_ns: 0.19,
            rf_delay_sqrt_ns: 5.3e-3,
            bank_delay_ns: 2.5e-3,
        }
    }
}

impl AreaModel {
    /// ViReC physical register file area.
    pub fn rf_area(&self, regs: usize) -> f64 {
        self.rf_per_reg_mm2 * regs as f64
    }

    /// VRMU tag-store (fully associative CAM) area — the superlinear term
    /// that makes large ViReC contexts uneconomical.
    pub fn tag_store_area(&self, regs: usize) -> f64 {
        self.tag_coeff_mm2 * (regs as f64).powf(TAG_EXP)
    }

    /// Rollback queue and remaining VRMU logic.
    pub fn vrmu_logic_area(&self, regs: usize) -> f64 {
        self.vrmu_logic_frac * self.rf_area(regs)
    }

    /// Total ViReC additions over the base core.
    pub fn virec_overhead(&self, regs: usize) -> f64 {
        self.rf_area(regs) + self.tag_store_area(regs) + self.vrmu_logic_area(regs)
    }

    /// Full ViReC core area for a physical RF of `regs` entries.
    pub fn virec_core(&self, regs: usize) -> f64 {
        self.base_core_mm2 + self.virec_overhead(regs)
    }

    /// Full banked core area for `threads` banks of 64 registers.
    pub fn banked_core(&self, threads: usize) -> f64 {
        self.base_core_mm2 + self.banked_fixed_mm2 + self.bank_mm2 * threads as f64
    }

    /// The single-thread in-order baseline (one bank).
    pub fn inorder_core(&self) -> f64 {
        self.base_core_mm2 + self.bank_mm2
    }

    /// Software context switching: the in-order core (single RF, no extra
    /// hardware).
    pub fn software_core(&self) -> f64 {
        self.inorder_core()
    }

    /// Double-buffer prefetching core: two banks sized for `regs_per_thread`
    /// registers each, plus per-thread next-register metadata for the exact
    /// variant (passed as `metadata_threads > 0`).
    pub fn prefetch_core(&self, regs_per_thread: usize, metadata_threads: usize) -> f64 {
        let two_banks = 2.0 * self.rf_per_reg_mm2 * regs_per_thread as f64 * 1.1;
        // Exact prefetching stores a predicted register mask and quantum
        // counters per thread — small, but it grows with thread count and
        // is the structure that caps thread scaling (§6.1).
        let metadata = 2.0e-3 * metadata_threads as f64;
        self.base_core_mm2 + two_banks + metadata
    }

    /// The out-of-order comparison point (Arm N1-like).
    pub fn ooo_core(&self) -> f64 {
        self.ooo_multiplier * self.inorder_core()
    }

    /// ViReC RF read delay for `regs` physical registers (ns).
    pub fn virec_rf_delay(&self, regs: usize) -> f64 {
        self.rf_delay_base_ns + self.rf_delay_sqrt_ns * (regs as f64).sqrt()
    }

    /// Banked RF read delay for `threads` banks (ns).
    pub fn banked_rf_delay(&self, threads: usize) -> f64 {
        self.rf_delay_base_ns
            + self.rf_delay_sqrt_ns * (32f64).sqrt()
            + self.bank_delay_ns * threads as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> AreaModel {
        AreaModel::default()
    }

    #[test]
    fn banked_matches_paper_range() {
        // "a banked core will require an area of 2.8-3.9 mm²" at 8-16
        // threads.
        assert!((m().banked_core(8) - 2.8).abs() < 0.05);
        assert!((m().banked_core(16) - 3.9).abs() < 0.05);
    }

    #[test]
    fn virec_eight_regs_per_thread_is_1_7mm2() {
        // "a ViReC core with 8 registers (80-100% context) per thread
        // requires only 1.7 mm²" at 8-16 threads (64-128 phys regs; the
        // quoted figure corresponds to the ~8-thread point).
        let a = m().virec_core(8 * 8);
        assert!((a - 1.7).abs() < 0.1, "got {a}");
    }

    #[test]
    fn virec_overhead_about_20_percent() {
        // "ViReC incurs an overhead of 20% over the baseline core".
        let ratio = m().virec_core(64) / m().base_core_mm2;
        assert!((ratio - 1.2).abs() < 0.05, "got {ratio}");
    }

    #[test]
    fn virec_saves_about_40_percent_over_banked() {
        // "offers up to 40% area savings over a banked design".
        let savings = 1.0 - m().virec_core(64) / m().banked_core(8);
        assert!((0.35..=0.45).contains(&savings), "got {savings}");
    }

    #[test]
    fn full_contexts_cost_more_than_banking() {
        // "storing large or complete contexts in a fully associative cache
        // will require more area than banked RFs".
        assert!(m().virec_core(512) > m().banked_core(8));
        assert!(m().virec_core(1024) > m().banked_core(16));
    }

    #[test]
    fn tag_store_is_superlinear() {
        let t64 = m().tag_store_area(64);
        let t128 = m().tag_store_area(128);
        assert!(
            t128 > 2.0 * t64,
            "doubling entries must more than double CAM area"
        );
    }

    #[test]
    fn vrmu_logic_under_ten_percent_of_rf() {
        // "The rollback queue and other VRMU logic constitute less than 10%
        // of the RF size".
        for regs in [24, 64, 120] {
            assert!(m().vrmu_logic_area(regs) < 0.1 * m().rf_area(regs));
        }
    }

    #[test]
    fn ooo_is_19x() {
        let ratio = m().ooo_core() / m().inorder_core();
        assert!((ratio - 19.1).abs() < 1e-9);
    }

    #[test]
    fn delay_matches_paper_points() {
        // Baseline 32-entry RF ≈ 0.22 ns; ViReC 80 entries ≈ 0.24 ns.
        let base = m().virec_rf_delay(32);
        let v80 = m().virec_rf_delay(80);
        assert!((base - 0.22).abs() < 0.005, "base {base}");
        assert!((v80 - 0.24).abs() < 0.005, "v80 {v80}");
        // "equivalent to the delay of a similarly threaded banked core".
        let b8 = m().banked_rf_delay(8);
        assert!((v80 - b8).abs() < 0.01, "v80 {v80} vs banked8 {b8}");
    }

    #[test]
    fn delay_grows_with_registers() {
        assert!(m().virec_rf_delay(120) > m().virec_rf_delay(24));
        assert!(m().banked_rf_delay(16) > m().banked_rf_delay(4));
    }

    #[test]
    fn prefetch_core_between_inorder_and_banked() {
        let p = m().prefetch_core(10, 8);
        assert!(p > m().base_core_mm2);
        assert!(
            p < m().banked_core(8),
            "prefetch is the area-efficient alternative"
        );
    }
}
