//! Area cost of the fault-tolerant mesh NoC (routers, link CRC, and
//! retransmission buffers), layered beside [`AreaModel`] — answering the
//! ISSUE-10 question: does swapping the far-memory crossbar for a
//! protected 2D mesh stay a rounding error next to the cores it serves?
//!
//! The router is priced per port (input FIFO, crossbar mux column, and
//! round-robin arbiter share), so a 5-port mesh router (4 cardinal
//! directions + local) composes from the same constants as the N-port
//! crossbar it replaces. Link protection is priced per *directed* link:
//! one CRC-16 generator/checker pair and a retransmission buffer deep
//! enough to hold every flit the sender may have in flight awaiting ACK.
//! The constants are calibrated to small 45 nm NoC router syntheses
//! (ORION-class numbers), matching the calibration style of the ECC and
//! RAS models.

use crate::model::AreaModel;

/// Input-buffer depth per router port, in flits. Mirrors the simulator's
/// `virec_mem::NODE_BUF_FLITS` (the two must agree for the pricing to
/// describe the simulated hardware).
pub const BUF_FLITS_PER_PORT: usize = 4;

/// Retransmission-buffer depth per directed link, in flits: the sender
/// keeps a copy of every unacknowledged flit, bounded by the link's
/// credit window (one buffer's worth).
pub const RETX_FLITS_PER_LINK: usize = BUF_FLITS_PER_PORT;

/// NoC silicon for one fabric, split into its components (mm²).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NocOverhead {
    /// Router switching logic: crossbar mux columns + arbiters, summed
    /// over every router port in the fabric.
    pub switch_mm2: f64,
    /// Input FIFOs: `BUF_FLITS_PER_PORT` flit slots per router port.
    pub buffer_mm2: f64,
    /// CRC-16 generator/checker pairs, one per directed link.
    pub crc_mm2: f64,
    /// Retransmission buffers (`RETX_FLITS_PER_LINK` flit copies) plus
    /// the retry sequencing FSM, one per directed link.
    pub retx_mm2: f64,
}

impl NocOverhead {
    /// Total NoC silicon for the fabric.
    pub fn total_mm2(&self) -> f64 {
        self.switch_mm2 + self.buffer_mm2 + self.crc_mm2 + self.retx_mm2
    }

    /// The fault-tolerance share (CRC + retransmission) of the total —
    /// what link protection adds on top of a bare best-effort mesh.
    pub fn protection_frac(&self) -> f64 {
        (self.crc_mm2 + self.retx_mm2) / self.total_mm2()
    }
}

/// Analytic model of the NoC hardware, parameterized like
/// [`RasAreaModel`](crate::ras::RasAreaModel) so the constants can be
/// recalibrated independently.
#[derive(Clone, Copy, Debug)]
pub struct NocAreaModel {
    /// One router port's crossbar mux column plus its arbiter share
    /// (mm²). Calibrated to a 64-bit-flit 5-port wormhole router at
    /// 45 nm, switch fraction divided by 5.
    pub port_switch_mm2: f64,
    /// One flit slot of input buffering (mm²) — a ~160-bit register row
    /// with head/tail pointers amortized over the FIFO.
    pub flit_buf_mm2: f64,
    /// One CRC-16 generator/checker pair (mm²): ~80 XOR/AND cells plus
    /// the compare.
    pub crc_pair_mm2: f64,
    /// The retry FSM per directed link (timeout counter, backoff shift,
    /// sequence compare), excluding the flit copies (mm²).
    pub retry_fsm_mm2: f64,
}

impl Default for NocAreaModel {
    fn default() -> Self {
        NocAreaModel {
            port_switch_mm2: 2.2e-3,
            flit_buf_mm2: 4.0e-4,
            crc_pair_mm2: 1.2e-4,
            retry_fsm_mm2: 2.0e-4,
        }
    }
}

impl NocAreaModel {
    /// Per-directed-link protection silicon: CRC pair + retry FSM +
    /// retransmission flit copies.
    fn link_protection_mm2(&self) -> (f64, f64) {
        let crc = self.crc_pair_mm2;
        let retx = self.retry_fsm_mm2 + self.flit_buf_mm2 * RETX_FLITS_PER_LINK as f64;
        (crc, retx)
    }

    /// Overhead of a `cols x rows` mesh: one 5-port router per node
    /// (4 cardinal + local port), input FIFOs on every port, and CRC +
    /// retransmission on every directed inter-router link. Matches the
    /// simulator's link census: `2 * (rows*(cols-1) + cols*(rows-1))`
    /// directed links.
    pub fn mesh_overhead(&self, cols: usize, rows: usize) -> NocOverhead {
        assert!(cols >= 1 && rows >= 1, "degenerate mesh {cols}x{rows}");
        let nodes = cols * rows;
        let ports = nodes * 5;
        let links = 2 * (rows * (cols - 1) + cols * (rows - 1));
        let (crc, retx) = self.link_protection_mm2();
        NocOverhead {
            switch_mm2: self.port_switch_mm2 * ports as f64,
            buffer_mm2: self.flit_buf_mm2 * (ports * BUF_FLITS_PER_PORT) as f64,
            crc_mm2: crc * links as f64,
            retx_mm2: retx * links as f64,
        }
    }

    /// Overhead of the baseline N-port crossbar: one monolithic switch
    /// (every port sees an N-wide mux column), single-stage, no
    /// inter-router links so no CRC/retransmission hardware — errors on
    /// the short crossbar traces are out of the fault model, exactly as
    /// in the simulator.
    pub fn crossbar_overhead(&self, ports: usize) -> NocOverhead {
        NocOverhead {
            switch_mm2: self.port_switch_mm2 * ports as f64,
            buffer_mm2: self.flit_buf_mm2 * (ports * BUF_FLITS_PER_PORT) as f64,
            ..NocOverhead::default()
        }
    }

    /// The mesh's area premium over the crossbar it replaces, as a
    /// fraction of the total core area it connects (`ncores` ViReC cores
    /// with `regs` registers each). This is the headline the resilience
    /// experiment quotes.
    pub fn mesh_premium_frac(
        &self,
        area: &AreaModel,
        cols: usize,
        rows: usize,
        ncores: usize,
        regs: usize,
    ) -> f64 {
        let mesh = self.mesh_overhead(cols, rows).total_mm2();
        let xbar = self.crossbar_overhead(2 * ncores).total_mm2();
        (mesh - xbar) / (area.virec_core(regs) * ncores as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_link_census_matches_the_simulator() {
        // 2x2: 4 undirected neighbor pairs -> 8 directed links; the CRC
        // term must price exactly 8 pairs.
        let m = NocAreaModel::default();
        let o = m.mesh_overhead(2, 2);
        assert!((o.crc_mm2 - 8.0 * m.crc_pair_mm2).abs() < 1e-12);
        // 4x2: 10 undirected -> 20 directed.
        let o = m.mesh_overhead(4, 2);
        assert!((o.crc_mm2 - 20.0 * m.crc_pair_mm2).abs() < 1e-12);
    }

    #[test]
    fn protection_is_a_minor_share_of_the_mesh() {
        // CRC + retransmission must not dominate the router silicon —
        // fault tolerance rides along, it doesn't double the fabric.
        let m = NocAreaModel::default();
        for (c, r) in [(2, 2), (4, 2), (4, 4)] {
            let frac = m.mesh_overhead(c, r).protection_frac();
            assert!(frac < 0.35, "{c}x{r}: protection fraction {frac}");
        }
    }

    #[test]
    fn mesh_premium_stays_under_two_percent_of_core_area() {
        // The ISSUE-10 question: a protected 2x2 mesh over 4 ViReC cores
        // (64 regs each) costs under 2% of the cores it connects.
        let (a, m) = (AreaModel::default(), NocAreaModel::default());
        let frac = m.mesh_premium_frac(&a, 2, 2, 4, 64);
        assert!(frac.abs() < 0.02, "mesh premium fraction {frac}");
    }

    #[test]
    fn bigger_meshes_cost_more() {
        let m = NocAreaModel::default();
        let small = m.mesh_overhead(2, 2).total_mm2();
        let big = m.mesh_overhead(4, 4).total_mm2();
        assert!(big > 2.0 * small, "4x4 {big} vs 2x2 {small}");
    }
}
