//! End-to-end pipeline tests: run real programs through the full core
//! (pipeline + engine + caches + fabric) and check architectural state
//! against the golden interpreter. Because register values really travel
//! through the ViReC spill/fill machinery, these tests validate the whole
//! of §5.

use virec_core::{Core, CoreConfig, PolicyKind, RegRegion};
use virec_isa::reg::names::*;
use virec_isa::{Asm, Cond, ExecOutcome, FlatMem, Interpreter, Program, Reg, ThreadCtx};
use virec_mem::{Fabric, FabricConfig};

const REGION_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x10_000;
const CODE_BASE: u64 = 0x4000_0000;

/// Builds a fresh memory image with the data segment initialized by `init`.
fn build_mem(init: impl Fn(&mut FlatMem)) -> FlatMem {
    let mut mem = FlatMem::new(0, 0x40_000);
    init(&mut mem);
    mem
}

/// Runs `program` on every thread of a core and returns (core, mem) after
/// completion. Initial register contexts (one per thread) are produced by
/// `ctx_of` and written to the reserved region, mirroring the offload flow.
fn run_core(
    cfg: CoreConfig,
    program: &Program,
    mem: &mut FlatMem,
    ctx_of: impl Fn(usize) -> Vec<(Reg, u64)>,
) -> Core {
    let region = RegRegion::new(REGION_BASE, cfg.nthreads);
    for t in 0..cfg.nthreads {
        for (r, v) in ctx_of(t) {
            mem.write_u64(region.reg_addr(t, r), v);
        }
    }
    let mut core = Core::new(cfg, program.clone(), region, CODE_BASE, (0, 1));
    let mut fabric = Fabric::new(FabricConfig::default());
    let mut now = 0u64;
    while !core.done() {
        fabric.tick(now);
        core.tick(now, &mut fabric, mem);
        now += 1;
        assert!(now < 20_000_000, "core did not finish");
    }
    core.finalize_stats();
    core.drain(mem);
    core
}

/// Reference run: interpret the program per thread over a copy of memory.
fn golden(
    program: &Program,
    mem: &mut FlatMem,
    nthreads: usize,
    ctx_of: impl Fn(usize) -> Vec<(Reg, u64)>,
) -> Vec<ThreadCtx> {
    let mut out = Vec::new();
    for t in 0..nthreads {
        let mut ctx = ThreadCtx::new();
        for (r, v) in ctx_of(t) {
            ctx.set(r, v);
        }
        let res = Interpreter::new(program, mem).run(&mut ctx, 10_000_000);
        assert!(matches!(res, ExecOutcome::Halted { .. }));
        out.push(ctx);
    }
    out
}

/// Differentially checks a core configuration against the interpreter on a
/// given program/workload.
fn check_against_golden(
    cfg: CoreConfig,
    program: &Program,
    init: impl Fn(&mut FlatMem),
    ctx_of: impl Fn(usize) -> Vec<(Reg, u64)> + Copy,
) -> Core {
    let nthreads = cfg.nthreads;
    let mut mem_golden = build_mem(&init);
    let golden_ctxs = golden(program, &mut mem_golden, nthreads, ctx_of);

    let mut mem = build_mem(&init);
    let core = run_core(cfg, program, &mut mem, ctx_of);

    for (t, gctx) in golden_ctxs.iter().enumerate() {
        for r in Reg::allocatable() {
            assert_eq!(
                core.arch_reg(t, r, &mem),
                gctx.get(r),
                "thread {t} register {r} mismatch"
            );
        }
    }
    // Data segment must match byte-for-byte (stores flowed correctly).
    assert_eq!(
        &mem.bytes()[DATA_BASE as usize..],
        &mem_golden.bytes()[DATA_BASE as usize..],
        "data segment diverged from golden run"
    );
    core
}

/// Gather-style kernel: each thread sums `data[idx[i]]` over its partition.
/// x0=sum, x1=i, x2=data base, x3=idx base, x4=end, x5=index val, x6=loaded,
/// x7=stride. Results stored at `out[tid]`.
fn gather_program() -> Program {
    let mut a = Asm::new("gather");
    a.label("loop");
    a.ldr_idx(X5, X3, X1, 3); // x5 = idx[i]
    a.ldr_idx(X6, X2, X5, 3); // x6 = data[x5]
    a.add(X0, X0, X6);
    a.add(X1, X1, X7); // i += stride
    a.cmp(X1, X4);
    a.bcc(Cond::Lt, "loop");
    a.str_idx(X0, X8, X9, 3); // out[tid] = sum
    a.halt();
    a.assemble()
}

fn gather_init(n: u64) -> impl Fn(&mut FlatMem) {
    move |mem: &mut FlatMem| {
        let data = DATA_BASE;
        let idx = DATA_BASE + n * 8;
        // Pseudo-random permutation-ish indices.
        for i in 0..n {
            mem.write_u64(data + i * 8, i.wrapping_mul(2654435761) % 1000);
            mem.write_u64(idx + i * 8, (i.wrapping_mul(40503)) % n);
        }
    }
}

fn gather_ctx(n: u64, nthreads: usize) -> impl Fn(usize) -> Vec<(Reg, u64)> + Copy {
    move |t: usize| {
        let data = DATA_BASE;
        let idx = DATA_BASE + n * 8;
        let out = DATA_BASE + 2 * n * 8;
        vec![
            (X0, 0),
            (X1, t as u64),
            (X2, data),
            (X3, idx),
            (X4, n),
            (X7, nthreads as u64),
            (X8, out),
            (X9, t as u64),
        ]
    }
}

#[test]
fn single_thread_banked_matches_golden() {
    let n = 256;
    let cfg = CoreConfig::banked(1);
    let core = check_against_golden(cfg, &gather_program(), gather_init(n), gather_ctx(n, 1));
    assert!(core.stats().instructions > n * 6);
    assert_eq!(
        core.stats().context_switches,
        0,
        "single thread never switches"
    );
}

#[test]
fn multithread_banked_matches_golden() {
    let n = 512;
    let cfg = CoreConfig::banked(4);
    let core = check_against_golden(cfg, &gather_program(), gather_init(n), gather_ctx(n, 4));
    assert!(
        core.stats().context_switches > 10,
        "expected CGMT switching, got {}",
        core.stats().context_switches
    );
}

#[test]
fn virec_full_context_matches_golden() {
    let n = 512;
    // 10 active regs per thread, 4 threads, full context.
    let cfg = CoreConfig::virec(4, 40);
    let core = check_against_golden(cfg, &gather_program(), gather_init(n), gather_ctx(n, 4));
    let s = core.stats();
    assert!(s.rf_misses > 0, "cold fills must count as misses");
    assert!(s.rf_hit_rate() > 0.5, "full context should mostly hit");
}

#[test]
fn virec_small_context_matches_golden() {
    let n = 512;
    // Heavy contention: 4 threads share 16 physical registers.
    let cfg = CoreConfig::virec(4, 16);
    let core = check_against_golden(cfg, &gather_program(), gather_init(n), gather_ctx(n, 4));
    assert!(core.stats().rf_spills > 0, "contention must force spills");
}

#[test]
fn virec_all_policies_match_golden() {
    let n = 128;
    for policy in PolicyKind::ALL {
        let mut cfg = CoreConfig::virec(4, 14);
        cfg.policy = policy;
        check_against_golden(cfg, &gather_program(), gather_init(n), gather_ctx(n, 4));
    }
}

#[test]
fn nsf_baseline_matches_golden() {
    let n = 256;
    let cfg = CoreConfig::nsf(4, 16);
    check_against_golden(cfg, &gather_program(), gather_init(n), gather_ctx(n, 4));
}

#[test]
fn software_engine_matches_golden() {
    let n = 128;
    let cfg = CoreConfig::software(3);
    let core = check_against_golden(cfg, &gather_program(), gather_init(n), gather_ctx(n, 3));
    assert!(core.stats().stall_ctx_software > 0);
}

#[test]
fn prefetch_full_matches_golden() {
    let n = 256;
    let cfg = CoreConfig::prefetch_full(4, 10);
    check_against_golden(cfg, &gather_program(), gather_init(n), gather_ctx(n, 4));
}

#[test]
fn prefetch_exact_with_recorded_oracle_matches_golden() {
    let n = 256;
    // Record quanta on a banked run.
    let mut mem = build_mem(gather_init(n));
    let region = RegRegion::new(REGION_BASE, 4);
    let ctx_of = gather_ctx(n, 4);
    for t in 0..4 {
        for (r, v) in ctx_of(t) {
            mem.write_u64(region.reg_addr(t, r), v);
        }
    }
    let mut rec_core = Core::new(
        CoreConfig::banked(4),
        gather_program(),
        region,
        CODE_BASE,
        (0, 1),
    );
    rec_core.enable_quantum_recording();
    let mut fabric = Fabric::new(FabricConfig::default());
    let mut now = 0;
    while !rec_core.done() {
        fabric.tick(now);
        rec_core.tick(now, &mut fabric, &mut mem);
        now += 1;
        assert!(now < 20_000_000);
    }
    let oracle = rec_core.take_oracle();
    assert!(oracle.sets.iter().any(|s| !s.is_empty()), "oracle recorded");

    // Replay with exact prefetching.
    let nthreads = 4;
    let mut mem_golden = build_mem(gather_init(n));
    let golden_ctxs = golden(&gather_program(), &mut mem_golden, nthreads, ctx_of);

    let mut mem2 = build_mem(gather_init(n));
    for t in 0..nthreads {
        for (r, v) in ctx_of(t) {
            mem2.write_u64(region.reg_addr(t, r), v);
        }
    }
    let mut core = Core::with_oracle(
        CoreConfig::prefetch_exact(4, 10),
        gather_program(),
        region,
        CODE_BASE,
        (0, 1),
        oracle,
    );
    let mut fabric2 = Fabric::new(FabricConfig::default());
    let mut now2 = 0;
    while !core.done() {
        fabric2.tick(now2);
        core.tick(now2, &mut fabric2, &mut mem2);
        now2 += 1;
        assert!(now2 < 20_000_000);
    }
    core.drain(&mut mem2);
    for (t, gctx) in golden_ctxs.iter().enumerate() {
        for r in Reg::allocatable() {
            assert_eq!(core.arch_reg(t, r, &mem2), gctx.get(r), "t{t} {r}");
        }
    }
}

#[test]
fn store_heavy_kernel_matches_golden() {
    // Scatter: out[idx[i]] = i * 3, stressing the store queue.
    let n = 256u64;
    let mut a = Asm::new("scatter");
    a.label("loop");
    a.ldr_idx(X5, X3, X1, 3);
    a.mov_imm(X6, 3);
    a.mul(X6, X1, X6);
    a.str_idx(X6, X2, X5, 3);
    a.add(X1, X1, X7);
    a.cmp(X1, X4);
    a.bcc(Cond::Lt, "loop");
    a.halt();
    let p = a.assemble();
    let init = move |mem: &mut FlatMem| {
        let idx = DATA_BASE + n * 8;
        for i in 0..n {
            // Disjoint per-thread targets: idx[i] = i (identity) keeps
            // threads from racing on the same slot across partitions.
            mem.write_u64(idx + i * 8, i);
        }
    };
    let ctx_of = move |t: usize| {
        vec![
            (X1, t as u64),
            (X2, DATA_BASE),
            (X3, DATA_BASE + n * 8),
            (X4, n),
            (X7, 4u64),
        ]
    };
    let cfg = CoreConfig::virec(4, 24);
    check_against_golden(cfg, &p, init, ctx_of);
}

#[test]
fn dependent_loads_pointer_chase_matches_golden() {
    // Pointer chase: x0 = next[x0], N hops — maximal load-use dependence.
    let n: u64 = 64;
    let mut a = Asm::new("chase");
    a.label("loop");
    a.ldr_idx(X0, X2, X0, 3); // x0 = next[x0]
    a.subi(X1, X1, 1);
    a.cbnz(X1, "loop");
    a.halt();
    let p = a.assemble();
    let init = move |mem: &mut FlatMem| {
        for i in 0..n {
            mem.write_u64(DATA_BASE + i * 8, (i + 17) % n);
        }
    };
    let ctx_of = move |t: usize| vec![(X0, t as u64 % n), (X1, 500u64), (X2, DATA_BASE)];
    let cfg = CoreConfig::virec(2, 16);
    check_against_golden(cfg, &p, init, ctx_of);
}

#[test]
fn udiv_long_latency_matches_golden() {
    let mut a = Asm::new("div");
    a.mov_imm(X1, 1000);
    a.mov_imm(X2, 7);
    a.emit(virec_isa::Instr::Alu {
        op: virec_isa::AluOp::Udiv,
        dst: X3,
        src: X1,
        rhs: virec_isa::instr::Operand2::Reg(X2),
    });
    a.addi(X3, X3, 1);
    a.halt();
    let p = a.assemble();
    let cfg = CoreConfig::banked(1);
    let core = check_against_golden(cfg, &p, |_| {}, |_| vec![]);
    assert!(core.stats().cycles > 12, "udiv latency must show up");
}

#[test]
fn ipc_sanity_alu_chain() {
    // A tight ALU loop should sustain close to 1 IPC on the banked core
    // once the icache is warm (backward branches predict taken).
    let mut a = Asm::new("alu");
    a.mov_imm(X1, 500);
    a.label("loop");
    a.addi(X2, X2, 1);
    a.addi(X3, X3, 1);
    a.addi(X4, X4, 1);
    a.addi(X5, X5, 1);
    a.addi(X6, X6, 1);
    a.addi(X7, X7, 1);
    a.subi(X1, X1, 1);
    a.cbnz(X1, "loop");
    a.halt();
    let p = a.assemble();
    let cfg = CoreConfig::banked(1);
    let mut mem = build_mem(|_| {});
    let core = run_core(cfg, &p, &mut mem, |_| vec![]);
    let s = core.stats();
    assert!(
        s.ipc() > 0.7,
        "ALU chain IPC too low: {} ({} cycles / {} instrs)",
        s.ipc(),
        s.cycles,
        s.instructions
    );
}

#[test]
fn csl_blocks_switch_with_single_thread() {
    let n = 128;
    let cfg = CoreConfig::virec(1, 12);
    let mut mem = build_mem(gather_init(n));
    let core = run_core(cfg, &gather_program(), &mut mem, gather_ctx(n, 1));
    assert_eq!(core.stats().context_switches, 0);
    assert!(core.stats().stall_mem > 0, "misses become blocking waits");
}

#[test]
fn branch_mispredicts_counted() {
    // Forward conditional branches, alternating taken/not-taken.
    let mut a = Asm::new("br");
    a.mov_imm(X1, 100);
    a.label("loop");
    a.andi(X2, X1, 1);
    a.cbnz(X2, "odd");
    a.addi(X3, X3, 1);
    a.label("odd");
    a.subi(X1, X1, 1);
    a.cbnz(X1, "loop");
    a.halt();
    let p = a.assemble();
    let cfg = CoreConfig::banked(1);
    let mut mem = build_mem(|_| {});
    let core = run_core(cfg, &p, &mut mem, |_| vec![]);
    assert!(core.stats().branch_mispredicts > 20);
}
