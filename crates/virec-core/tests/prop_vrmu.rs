//! Property tests for the VRMU: the tag store must stay injective and
//! lock-consistent under arbitrary operation sequences, and victim
//! selection must respect locks and validity for every policy.

use proptest::prelude::*;
use virec_core::policy::{select_victim, EntryMeta, XorShift};
use virec_core::vrmu::{AllocOutcome, RollbackEntry, RollbackQueue, TagStore};
use virec_core::PolicyKind;
use virec_isa::{Reg, RegList};

#[derive(Clone, Debug)]
enum TsOp {
    Alloc { tid: u8, reg: u8 },
    Touch { tid: u8, reg: u8 },
    Lock { tid: u8, reg: u8 },
    Unlock { tid: u8, reg: u8 },
    Switch { out: u8, inn: u8 },
    ClearCommit { tid: u8, reg: u8 },
}

fn ts_op() -> impl Strategy<Value = TsOp> {
    prop_oneof![
        (0u8..4, 0u8..8).prop_map(|(tid, reg)| TsOp::Alloc { tid, reg }),
        (0u8..4, 0u8..8).prop_map(|(tid, reg)| TsOp::Touch { tid, reg }),
        (0u8..4, 0u8..8).prop_map(|(tid, reg)| TsOp::Lock { tid, reg }),
        (0u8..4, 0u8..8).prop_map(|(tid, reg)| TsOp::Unlock { tid, reg }),
        (0u8..4, 0u8..4).prop_map(|(out, inn)| TsOp::Switch { out, inn }),
        (0u8..4, 0u8..8).prop_map(|(tid, reg)| TsOp::ClearCommit { tid, reg }),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    (0usize..PolicyKind::ALL.len()).prop_map(|i| PolicyKind::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Arbitrary operation sequences keep the tag store injective, locks
    /// balanced, and lookups consistent with allocations.
    #[test]
    fn tag_store_invariants(ops in prop::collection::vec(ts_op(), 1..200), policy in policy_strategy()) {
        let mut ts = TagStore::new(10, policy);
        let mut lock_depth = std::collections::HashMap::<(u8, u8), u32>::new();
        for op in ops {
            match op {
                TsOp::Alloc { tid, reg } => {
                    let r = Reg::new(reg);
                    if ts.lookup(tid, r).is_none() {
                        match ts.allocate(tid, r) {
                            AllocOutcome::NoVictim => {}
                            AllocOutcome::Free { idx } | AllocOutcome::Evicted { idx, .. } => {
                                prop_assert_eq!(ts.lookup(tid, r), Some(idx));
                            }
                        }
                    }
                }
                TsOp::Touch { tid, reg } => {
                    if let Some(idx) = ts.lookup(tid, Reg::new(reg)) {
                        ts.touch(idx);
                        prop_assert!(ts.entry(idx).meta.c_bit, "touch sets C");
                        prop_assert_eq!(ts.entry(idx).meta.a_bits, 0);
                    }
                }
                TsOp::Lock { tid, reg } => {
                    if let Some(idx) = ts.lookup(tid, Reg::new(reg)) {
                        ts.lock(idx);
                        *lock_depth.entry((tid, reg)).or_insert(0) += 1;
                    }
                }
                TsOp::Unlock { tid, reg } => {
                    let d = lock_depth.entry((tid, reg)).or_insert(0);
                    if *d > 0 {
                        if let Some(idx) = ts.lookup(tid, Reg::new(reg)) {
                            ts.unlock(idx);
                            *d -= 1;
                        }
                    }
                }
                TsOp::Switch { out, inn } => {
                    ts.on_context_switch(out, inn);
                    // Post-conditions of §5.1.
                    for r in 0..8u8 {
                        if let Some(idx) = ts.lookup(out, Reg::new(r)) {
                            prop_assert_eq!(ts.entry(idx).meta.t_bits, 7);
                        }
                        if out != inn {
                            if let Some(idx) = ts.lookup(inn, Reg::new(r)) {
                                prop_assert_eq!(ts.entry(idx).meta.t_bits, 0);
                            }
                        }
                    }
                }
                TsOp::ClearCommit { tid, reg } => {
                    ts.clear_commit(tid, Reg::new(reg));
                    if let Some(idx) = ts.lookup(tid, Reg::new(reg)) {
                        prop_assert!(!ts.entry(idx).meta.c_bit);
                    }
                }
            }
            ts.check_invariants();
        }
        // Locked entries were never evicted: every lock_depth > 0 entry is
        // still resident.
        for ((tid, reg), d) in lock_depth {
            if d > 0 {
                prop_assert!(
                    ts.lookup(tid, Reg::new(reg)).is_some(),
                    "locked register t{tid} x{reg} vanished"
                );
            }
        }
    }

    /// The selected victim is always valid and unlocked; None only when no
    /// candidate exists.
    #[test]
    fn victim_is_always_legal(
        metas in prop::collection::vec(
            (any::<bool>(), any::<bool>(), 0u8..8, any::<bool>(), 0u8..8, any::<u64>(), any::<u64>()),
            1..32
        ),
        policy in policy_strategy(),
        rotate in any::<u64>(),
    ) {
        let entries: Vec<EntryMeta> = metas
            .iter()
            .map(|&(valid, locked, t, c, a, stamp, seq)| EntryMeta {
                valid,
                locked,
                t_bits: t,
                c_bit: c,
                a_bits: a,
                last_access: stamp,
                fill_seq: seq,
                rrpv: (a % 4),
            })
            .collect();
        let mut rng = XorShift::new(rotate | 1);
        let candidates = entries.iter().filter(|e| e.valid && !e.locked).count();
        match select_victim(policy, &entries, rotate, &mut rng) {
            Some(i) => {
                prop_assert!(entries[i].valid && !entries[i].locked);
            }
            None => prop_assert_eq!(candidates, 0),
        }
    }

    /// The rollback queue is FIFO and its flush returns exactly the union
    /// of in-flight registers.
    #[test]
    fn rollback_queue_model(entries in prop::collection::vec(
        (prop::collection::vec(0u8..16, 0..4), any::<bool>()), 0..4
    )) {
        let mut rq = RollbackQueue::new(4);
        let mut model: Vec<(Vec<u8>, bool)> = Vec::new();
        for (regs, is_mem) in &entries {
            let mut list = RegList::new();
            for &r in regs {
                list.push(Reg::new(r));
            }
            rq.push(RollbackEntry { regs: list, is_mem: *is_mem });
            // Mirror RegList's dedup in the model.
            let mut deduped = Vec::new();
            for &r in regs {
                if !deduped.contains(&r) {
                    deduped.push(r);
                }
            }
            model.push((deduped, *is_mem));
        }
        prop_assert_eq!(rq.len(), model.len());
        prop_assert_eq!(rq.oldest_is_mem(), model.first().map(|(_, m)| *m));

        let mut expected_union: Vec<u8> = Vec::new();
        for (regs, _) in &model {
            for &r in regs {
                if !expected_union.contains(&r) {
                    expected_union.push(r);
                }
            }
        }
        let mut flushed: Vec<u8> = rq.flush().iter().map(|r| r.index() as u8).collect();
        flushed.sort_unstable();
        expected_union.sort_unstable();
        prop_assert_eq!(flushed, expected_union);
        prop_assert!(rq.is_empty());
    }
}
