//! Replays of the paper's worked examples (Figures 5 and 6) against the
//! tag store — the pedagogical scenarios that motivate MRT-PLRU and LRC.

use virec_core::vrmu::{AllocOutcome, TagStore};
use virec_core::PolicyKind;
use virec_isa::reg::names::*;
use virec_isa::Reg;

fn fill(ts: &mut TagStore, tid: u8, reg: Reg) -> usize {
    match ts.allocate(tid, reg) {
        AllocOutcome::Free { idx } | AllocOutcome::Evicted { idx, .. } => idx,
        AllocOutcome::NoVictim => panic!("unexpected NoVictim"),
    }
}

/// Figure 5: two threads run the gather loop; the RF is full. When the blue
/// thread (thread 1) misses on x5 right after a context switch, PLRU evicts
/// a register of the *upcoming/current* thread (by age alone), while
/// MRT-PLRU evicts from the most recently suspended red thread (thread 0).
fn figure5_scenario(policy: PolicyKind) -> (u8, Reg) {
    // Six physical registers: blue (t1) holds x2, x4, x6 from its *last*
    // quantum (old ages); red (t0) holds x2, x4, x6 and has just been
    // running, so its registers are the youngest.
    let mut ts = TagStore::new(6, policy);
    for r in [X2, X4, X6] {
        let i = fill(&mut ts, 1, r);
        ts.touch(i);
    }
    for r in [X2, X4, X6] {
        let i = fill(&mut ts, 0, r);
        ts.touch(i);
    }
    // Red keeps executing its loop for a while (its registers stay young,
    // blue's ages saturate).
    for _ in 0..4 {
        for r in [X2, X4, X6] {
            let i = ts.lookup(0, r).expect("resident");
            ts.touch(i);
        }
    }
    // Red's ldrsw misses in the dcache: context switch to blue (t1).
    ts.on_context_switch(0, 1);
    // Blue starts replaying: touches x2 (address base) — making its other
    // registers older — then misses on x5.
    let i = ts.lookup(1, X2).expect("resident");
    ts.touch(i);
    match ts.allocate(1, X5) {
        AllocOutcome::Evicted {
            victim_tid,
            victim_reg,
            ..
        } => (victim_tid, victim_reg),
        other => panic!("expected an eviction, got {other:?}"),
    }
}

#[test]
fn figure5_plru_evicts_from_the_wrong_thread() {
    let (tid, _reg) = figure5_scenario(PolicyKind::Plru);
    assert_eq!(
        tid, 1,
        "age-only PLRU evicts one of the blue (current) thread's own \
         registers — the Figure 5(b) pathology"
    );
}

#[test]
fn figure5_mrt_plru_targets_the_suspended_thread() {
    let (tid, _reg) = figure5_scenario(PolicyKind::MrtPlru);
    assert_eq!(
        tid, 0,
        "MRT-PLRU evicts from the most recently suspended red thread — \
         Figure 5(c)"
    );
}

#[test]
fn figure5_lrc_also_targets_the_suspended_thread() {
    let (tid, _) = figure5_scenario(PolicyKind::Lrc);
    assert_eq!(tid, 0);
}

/// Figure 6: within the suspended red thread, x2/x5 were operands of the
/// in-flight (flushed) `ldrsw x6, [x2, x5]` while x0 belonged to an already
/// *committed* instruction. All three share the same saturated age, so
/// MRT-PLRU cannot tell them apart — but LRC's commit bit singles out x0.
fn figure6_store(policy: PolicyKind) -> TagStore {
    // Exactly three entries: x0, x2, x5 — the allocation for blue's x3
    // must evict one of them.
    let mut ts = TagStore::new(3, policy);
    for r in [X0, X2, X5] {
        let i = fill(&mut ts, 0, r);
        ts.touch(i);
        // Saturate ages: long time since these were accessed.
        ts.entry_mut(i).meta.a_bits = 7;
    }
    // The flushed instruction's registers get their C bits cleared by the
    // rollback-queue compaction; x0's committed access keeps C = 1.
    ts.clear_commit(0, X2);
    ts.clear_commit(0, X5);
    // Red is suspended.
    ts.on_context_switch(0, 1);
    ts
}

#[test]
fn figure6_lrc_evicts_the_committed_register() {
    let mut ts = figure6_store(PolicyKind::Lrc);
    // Blue needs a register: the victim must be x0 (committed), never the
    // in-flight x2/x5 that red will replay immediately on resume.
    match ts.allocate(1, X3) {
        AllocOutcome::Evicted {
            victim_tid,
            victim_reg,
            ..
        } => {
            assert_eq!(victim_tid, 0);
            assert_eq!(victim_reg, X0, "LRC must evict the committed x0");
        }
        other => panic!("expected eviction, got {other:?}"),
    }
}

#[test]
fn figure6_mrt_plru_cannot_distinguish() {
    // With saturated ages, MRT-PLRU's choice among x0/x2/x5 is arbitrary
    // (rotation) — across several equivalent scenarios it will sometimes
    // pick a flushed register, which is exactly the fuzzing LRC repairs.
    let mut evicted_inflight = false;
    for _ in 0..3 {
        let mut ts = figure6_store(PolicyKind::MrtPlru);
        if let AllocOutcome::Evicted { victim_reg, .. } = ts.allocate(1, X3) {
            if victim_reg == X2 || victim_reg == X5 {
                evicted_inflight = true;
            }
            // Free the slot again for the next round by reallocating in a
            // fresh store (loop builds a new one).
        }
    }
    // Note: the rotation pointer advances identically in each fresh store,
    // so run three stores with different numbers of prior evictions to
    // move the pointer.
    let mut ts = figure6_store(PolicyKind::MrtPlru);
    let _ = ts.allocate(1, X3);
    if let AllocOutcome::Evicted { victim_reg, .. } = ts.allocate(1, X4) {
        if victim_reg == X2 || victim_reg == X5 {
            evicted_inflight = true;
        }
    }
    assert!(
        evicted_inflight,
        "MRT-PLRU should (sometimes) evict an in-flight register"
    );
}

/// After the thread cycle completes a full round, the suspended thread's
/// T bits have decayed back to zero — it is about to run again and its
/// registers are protected (the round-robin recency ramp of §4.1).
#[test]
fn t_bits_decay_over_a_full_round() {
    let mut ts = TagStore::new(8, PolicyKind::Lrc);
    let i = fill(&mut ts, 0, X1);
    ts.touch(i);
    ts.on_context_switch(0, 1);
    assert_eq!(ts.entry(ts.lookup(0, X1).unwrap()).meta.t_bits, 7);
    // Seven more switches among other threads: t0's recency decays to 0.
    for k in 1..8u8 {
        ts.on_context_switch(k, k + 1);
    }
    assert_eq!(
        ts.entry(ts.lookup(0, X1).unwrap()).meta.t_bits,
        0,
        "after a full round the thread is 'next' again"
    );
}
