//! Corner-case tests for the pipeline: CSL masking, store-queue pressure,
//! round-robin fairness, sysreg buffering, and quantum recording.

use virec_core::{Core, CoreConfig, RegRegion, ThreadStatus};
use virec_isa::reg::names::*;
use virec_isa::{Asm, Cond, FlatMem, Program, Reg};
use virec_mem::{Fabric, FabricConfig};

const REGION_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x10_000;
const CODE_BASE: u64 = 0x4000_0000;

struct Rig {
    core: Core,
    fabric: Fabric,
    mem: FlatMem,
}

impl Rig {
    fn new(cfg: CoreConfig, program: Program, ctx_of: impl Fn(usize) -> Vec<(Reg, u64)>) -> Rig {
        let mut mem = FlatMem::new(0, 0x100_000);
        let region = RegRegion::new(REGION_BASE, cfg.nthreads);
        for t in 0..cfg.nthreads {
            for (r, v) in ctx_of(t) {
                mem.write_u64(region.reg_addr(t, r), v);
            }
        }
        Rig {
            core: Core::new(cfg, program, region, CODE_BASE, (0, 1)),
            fabric: Fabric::new(FabricConfig::default()),
            mem,
        }
    }

    fn run_to_completion(&mut self) -> u64 {
        let mut now = 0;
        while !self.core.done() {
            self.fabric.tick(now);
            self.core.tick(now, &mut self.fabric, &mut self.mem);
            now += 1;
            assert!(now < 50_000_000, "run wedged");
        }
        self.core.finalize_stats();
        now
    }
}

/// A store-burst kernel: consecutive stores to distinct lines.
fn store_burst(n: i64) -> Program {
    let mut a = Asm::new("burst");
    a.mov_imm(X1, 0);
    a.mov_imm(X2, DATA_BASE as i64);
    a.mov_imm(X3, n);
    a.label("loop");
    a.lsli(X4, X1, 6); // line stride
    a.add(X4, X2, X4);
    a.str(X5, X4, 0);
    a.addi(X1, X1, 1);
    a.cmp(X1, X3);
    a.bcc(Cond::Lt, "loop");
    a.halt();
    a.assemble()
}

#[test]
fn store_queue_fills_under_bursts() {
    let mut cfg = CoreConfig::banked(1);
    cfg.sq_entries = 2; // tiny SQ forces pressure
    let mut rig = Rig::new(cfg, store_burst(64), |_| vec![]);
    rig.run_to_completion();
    assert!(
        rig.core.stats().stall_sq_full > 0,
        "a 2-entry SQ must back-pressure a store burst"
    );
}

#[test]
fn bigger_store_queue_relieves_pressure() {
    let run_with_sq = |sq: usize| {
        let mut cfg = CoreConfig::banked(1);
        cfg.sq_entries = sq;
        let mut rig = Rig::new(cfg, store_burst(64), |_| vec![]);
        let cycles = rig.run_to_completion();
        (cycles, rig.core.stats().stall_sq_full)
    };
    let (c2, s2) = run_with_sq(2);
    let (c16, s16) = run_with_sq(16);
    assert!(s16 < s2);
    assert!(c16 <= c2);
}

/// Gather kernel for switch-oriented tests.
fn gather_prog() -> Program {
    let mut a = Asm::new("g");
    a.label("loop");
    a.ldr_idx(X5, X3, X1, 3);
    a.ldr_idx(X6, X2, X5, 3);
    a.add(X0, X0, X6);
    a.add(X1, X1, X7);
    a.cmp(X1, X4);
    a.bcc(Cond::Lt, "loop");
    a.halt();
    a.assemble()
}

fn gather_ctx(n: u64, nthreads: usize) -> impl Fn(usize) -> Vec<(Reg, u64)> {
    move |t| {
        vec![
            (X0, 0),
            (X1, t as u64),
            (X2, DATA_BASE),
            (X3, DATA_BASE + n * 8),
            (X4, n),
            (X7, nthreads as u64),
        ]
    }
}

fn init_gather(mem: &mut FlatMem, n: u64) {
    for i in 0..n {
        mem.write_u64(DATA_BASE + i * 8, i * 3);
        mem.write_u64(DATA_BASE + n * 8 + i * 8, (i * 7919) % n);
    }
}

#[test]
fn masked_switches_counted_when_bsi_busy() {
    // Tiny ViReC RF at 8 threads: fills are almost always outstanding, so
    // some switch requests must be masked by the BSI signal.
    let n = 512;
    let cfg = CoreConfig::virec(8, 12);
    let mut rig = Rig::new(cfg, gather_prog(), gather_ctx(n, 8));
    init_gather(&mut rig.mem, n);
    rig.run_to_completion();
    let s = rig.core.stats();
    assert!(s.context_switches > 100);
    assert!(
        s.switches_masked > 0,
        "expected some masked switches with a starved RF"
    );
}

#[test]
fn round_robin_covers_all_threads() {
    let n = 256;
    let nthreads = 5;
    let cfg = CoreConfig::banked(nthreads);
    let mut rig = Rig::new(cfg, gather_prog(), gather_ctx(n, nthreads));
    init_gather(&mut rig.mem, n);
    rig.run_to_completion();
    for t in 0..nthreads {
        assert_eq!(
            rig.core.thread(t).status,
            ThreadStatus::Halted,
            "thread {t} never completed"
        );
    }
    // Fair partitioning: every thread committed work, so instructions far
    // exceed a single partition's worth.
    assert!(rig.core.stats().instructions > n * 6 / 2);
}

#[test]
fn quantum_recording_masks_match_kernel_registers() {
    let n = 256;
    let cfg = CoreConfig::banked(4);
    let mut rig = Rig::new(cfg, gather_prog(), gather_ctx(n, 4));
    init_gather(&mut rig.mem, n);
    rig.core.enable_quantum_recording();
    rig.run_to_completion();
    let oracle = rig.core.take_oracle();
    assert_eq!(oracle.sets.len(), 4);
    // Kernel registers: x0..x7 minus x2/x3 bases… all of x0-x7 appear.
    let all: u32 = oracle.sets.iter().flatten().fold(0, |acc, m| acc | m);
    for r in [0u32, 1, 2, 3, 4, 5, 6, 7] {
        assert!(all & (1 << r) != 0, "x{r} missing from recorded quanta");
    }
    // No register outside the kernel's set may appear.
    assert_eq!(all & !0xFF, 0, "unexpected registers recorded: {all:#x}");
}

#[test]
fn sysreg_buffer_only_for_virec_like_engines() {
    // Banked cores keep sysregs in banks: no register-region dcache traffic
    // beyond the initial context fetch. ViReC cores fetch/writeback sysreg
    // lines each switch.
    let n = 256;
    let virec = {
        let cfg = CoreConfig::virec(4, 32);
        let mut rig = Rig::new(cfg, gather_prog(), gather_ctx(n, 4));
        init_gather(&mut rig.mem, n);
        rig.run_to_completion();
        *rig.core.stats()
    };
    assert!(virec.context_switches > 10);
    // ViReC's dcache sees register-class traffic (fills/spills/sysregs).
    assert!(virec.dcache.reg_hits + virec.dcache.reg_misses > 0);
}

#[test]
fn halted_threads_stop_consuming_cycles() {
    // One thread has 4x the work: the others halt early, and the core
    // finishes only when the straggler does, without deadlock.
    let n = 512;
    let cfg = CoreConfig::banked(4);
    let prog = gather_prog();
    let mut rig = Rig::new(cfg, prog, move |t| {
        let bound = if t == 0 { n } else { n / 4 };
        vec![
            (X0, 0),
            (X1, t as u64),
            (X2, DATA_BASE),
            (X3, DATA_BASE + n * 8),
            (X4, bound),
            (X7, 4u64),
        ]
    });
    init_gather(&mut rig.mem, n);
    rig.run_to_completion();
    assert!(rig.core.done());
}

#[test]
fn zero_iteration_thread_halts_cleanly() {
    // Thread bound below its start index: the loop body still executes
    // once (do-while shape), then halts — no special-casing needed, but
    // the core must not wedge on very short threads.
    let n = 64;
    let cfg = CoreConfig::virec(4, 16);
    let mut rig = Rig::new(cfg, gather_prog(), gather_ctx(n, 4));
    init_gather(&mut rig.mem, n);
    let cycles = rig.run_to_completion();
    assert!(cycles > 0);
}

#[test]
fn dynamic_thread_activation_matches_golden() {
    // Start with 4 of 8 threads; activate the rest mid-run. Final results
    // must still match a full 8-thread golden run (the contexts were
    // offloaded up front).
    let n = 512;
    let nthreads = 8;
    let cfg = CoreConfig::virec(nthreads, 40);
    let prog = gather_prog();
    let ctx_of = gather_ctx(n, nthreads);
    let mut mem = FlatMem::new(0, 0x100_000);
    init_gather(&mut mem, n);
    let region = RegRegion::new(REGION_BASE, nthreads);
    for t in 0..nthreads {
        for (r, v) in ctx_of(t) {
            mem.write_u64(region.reg_addr(t, r), v);
        }
    }
    let mut core = Core::new(cfg, prog.clone(), region, CODE_BASE, (0, 1));
    for t in 4..nthreads {
        core.deactivate_thread(t);
    }
    let mut fabric = Fabric::new(FabricConfig::default());
    let mut now = 0;
    let mut launched_rest = false;
    while !core.done() || !launched_rest {
        fabric.tick(now);
        core.tick(now, &mut fabric, &mut mem);
        now += 1;
        if !launched_rest && now == 5_000 {
            for t in 4..nthreads {
                core.activate_thread(t, 0);
            }
            launched_rest = true;
        }
        assert!(now < 50_000_000);
    }
    core.drain(&mut mem);

    // Golden comparison for all 8 threads.
    let mut gold_mem = FlatMem::new(0, 0x100_000);
    init_gather(&mut gold_mem, n);
    for t in 0..nthreads {
        let mut ctx = virec_isa::ThreadCtx::new();
        for (r, v) in ctx_of(t) {
            ctx.set(r, v);
        }
        let out = virec_isa::Interpreter::new(&prog, &mut gold_mem).run(&mut ctx, 10_000_000);
        assert!(matches!(out, virec_isa::ExecOutcome::Halted { .. }));
        for r in Reg::allocatable() {
            assert_eq!(core.arch_reg(t, r, &mem), ctx.get(r), "t{t} {r}");
        }
    }
}

#[test]
fn inactive_threads_do_not_block_completion() {
    let n = 128;
    let cfg = CoreConfig::banked(4);
    let mut rig = Rig::new(cfg, gather_prog(), gather_ctx(n, 4));
    init_gather(&mut rig.mem, n);
    rig.core.deactivate_thread(3);
    rig.run_to_completion();
    assert_eq!(rig.core.thread(3).status, ThreadStatus::Inactive);
    assert_eq!(rig.core.thread(0).status, ThreadStatus::Halted);
}

#[test]
fn tracer_captures_schedule_events() {
    use virec_core::{TraceEvent, VecTracer};
    let n = 256;
    let cfg = CoreConfig::virec(4, 32);
    let mut rig = Rig::new(cfg, gather_prog(), gather_ctx(n, 4));
    init_gather(&mut rig.mem, n);
    let rec = VecTracer::new();
    rig.core.set_tracer(rec.tracer());
    rig.run_to_completion();
    let events = rec.events();
    let commits = events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::Commit { .. }))
        .count() as u64;
    assert_eq!(commits, rig.core.stats().instructions);
    let outs = events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::SwitchOut { blocked: true, .. }))
        .count() as u64;
    assert_eq!(outs, rig.core.stats().context_switches);
    // Cycle stamps are monotonic.
    assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
    // Every blocked switch-out is eventually followed by that thread's
    // wakeup.
    let wakeups = events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::Wakeup { .. }))
        .count() as u64;
    assert!(
        wakeups >= outs,
        "every blocked thread must wake ({wakeups} vs {outs})"
    );
}
