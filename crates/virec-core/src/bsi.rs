//! The Backing Store Interface (§5.3).
//!
//! On an RF miss the BSI reads registers from and writes evicted registers
//! to the dcache. It implements the paper's three optimizations:
//!
//! * **fill priority** — loads for register fills are issued before stores
//!   for evictions, since fills are on the critical path;
//! * **dummy-value fills** — destination-only registers do not need their
//!   old value; the BSI writes a dummy value immediately and issues the
//!   backing-store transaction only for metadata bookkeeping, removing the
//!   backing-store latency from the critical path;
//! * **non-blocking operation** — multiple pipelined requests to the cache
//!   hide part of the backing-store latency (the blocking variant, used by
//!   the NSF baseline, allows a single outstanding request).
//!
//! While any register load or store is outstanding, the BSI signals the CSL
//! to block context switches (preventing eviction of registers that are
//! being retrieved).

use crate::vrmu::TagStore;
use std::collections::VecDeque;
use virec_isa::{AccessSize, DataMemory, FlatMem, Reg};
use virec_mem::{AccessKind, AccessResult, Cache, Fabric, MshrId};

/// A queued register fill.
#[derive(Clone, Copy, Debug)]
struct FillReq {
    tid: u8,
    reg: Reg,
    addr: u64,
    /// Dummy (metadata-only) transaction: the RF entry is already usable.
    dummy: bool,
    /// Speculative context-switch prefetch (never gates the pipeline or
    /// the CSL; issued behind demand fills).
    prefetch: bool,
}

/// A queued register spill (the value was already written functionally when
/// the eviction happened; this tracks the timing and the unpin).
#[derive(Clone, Copy, Debug)]
struct SpillReq {
    addr: u64,
}

#[derive(Clone, Copy, Debug)]
enum Wait {
    /// Dcache hit completing at this cycle.
    At(u64),
    /// Dcache miss tracked by this MSHR.
    Mshr(MshrId),
}

#[derive(Clone, Copy, Debug)]
enum Action {
    /// On completion, mark `(tid, reg)`'s fill as done and load its value.
    Fill {
        tid: u8,
        reg: Reg,
        addr: u64,
        /// Demand fills gate the CSL; prefetches do not.
        demand: bool,
    },
    /// Metadata-only transaction (dummy fill or spill): nothing to apply.
    Bookkeeping,
}

#[derive(Clone, Copy, Debug)]
struct Outstanding {
    wait: Wait,
    action: Action,
}

/// The backing store interface between the VRMU and the dcache.
#[derive(Clone)]
pub struct Bsi {
    nonblocking: bool,
    pinning: bool,
    fills: VecDeque<FillReq>,
    spills: VecDeque<SpillReq>,
    outstanding: Vec<Outstanding>,
}

impl Bsi {
    /// Creates a BSI. `nonblocking` allows pipelined requests; `pinning`
    /// makes BSI traffic pin/unpin register lines in the dcache.
    pub fn new(nonblocking: bool, pinning: bool) -> Bsi {
        Bsi {
            nonblocking,
            pinning,
            fills: VecDeque::new(),
            spills: VecDeque::new(),
            outstanding: Vec::new(),
        }
    }

    /// Queues a fill of `(tid, reg)` from backing-store address `addr`.
    ///
    /// For dummy fills the caller has already made the RF entry usable; the
    /// transaction is bookkeeping only.
    pub fn enqueue_fill(&mut self, tid: u8, reg: Reg, addr: u64, dummy: bool) {
        self.fills.push_back(FillReq {
            tid,
            reg,
            addr,
            dummy,
            prefetch: false,
        });
    }

    /// Queues a speculative prefetch fill (future-work extension): issued
    /// after all demand fills, and never counted by [`Bsi::fills_pending`].
    pub fn enqueue_prefetch_fill(&mut self, tid: u8, reg: Reg, addr: u64) {
        self.fills.push_back(FillReq {
            tid,
            reg,
            addr,
            dummy: false,
            prefetch: true,
        });
    }

    /// Queues a spill. The caller must have written the value to functional
    /// memory already (the architectural effect of the eviction).
    pub fn enqueue_spill(&mut self, addr: u64) {
        self.spills.push_back(SpillReq { addr });
    }

    /// Whether any register load or store is queued or outstanding — the
    /// CSL masking signal of §5.2.
    pub fn busy(&self) -> bool {
        !self.fills.is_empty() || !self.spills.is_empty() || !self.outstanding.is_empty()
    }

    /// Whether a *demand* fill (one the pipeline may be waiting on) is
    /// queued or in flight. Dummy bookkeeping transactions and speculative
    /// prefetches are excluded: they gate neither the pipeline nor the CSL.
    pub fn fills_pending(&self) -> bool {
        self.fills.iter().any(|f| !f.dummy && !f.prefetch)
            || self
                .outstanding
                .iter()
                .any(|o| matches!(o.action, Action::Fill { demand: true, .. }))
    }

    /// Earliest future cycle at which [`Bsi::tick`] could do anything.
    /// Call after `tick(now)`. Queued fills/spills retry issue every cycle;
    /// hit completions wake at their recorded cycle; MSHR waits contribute
    /// nothing — the dcache's `next_event` covers their completion.
    pub(crate) fn next_event(&self, now: u64) -> Option<u64> {
        if !self.fills.is_empty() || !self.spills.is_empty() {
            return Some(now + 1);
        }
        self.outstanding
            .iter()
            .filter_map(|o| match o.wait {
                Wait::At(t) => Some(t.max(now + 1)),
                Wait::Mshr(_) => None,
            })
            .min()
    }

    fn fill_kind(&self) -> AccessKind {
        if self.pinning {
            AccessKind::RegFill
        } else {
            AccessKind::DataLoad
        }
    }

    fn spill_kind(&self) -> AccessKind {
        if self.pinning {
            AccessKind::RegSpill
        } else {
            AccessKind::DataStore
        }
    }

    /// Advances the BSI one cycle: completes returned requests and issues
    /// new ones (fills before spills).
    pub fn tick(
        &mut self,
        now: u64,
        dcache: &mut Cache,
        fabric: &mut Fabric,
        tags: &mut TagStore,
        mem: &FlatMem,
    ) {
        // Complete outstanding requests.
        let mut i = 0;
        while i < self.outstanding.len() {
            let done = match self.outstanding[i].wait {
                Wait::At(t) => t <= now,
                Wait::Mshr(id) => {
                    if dcache.mshr_ready(id, now) {
                        // Guarded by mshr_ready, so a retire failure means the
                        // id itself was corrupted; the transfer is complete
                        // either way (timing-only model), so degrade silently
                        // here and let the golden checker catch state damage.
                        let _ = dcache.mshr_retire(id);
                        true
                    } else {
                        false
                    }
                }
            };
            if !done {
                i += 1;
                continue;
            }
            if let Action::Fill { tid, reg, addr, .. } = self.outstanding[i].action {
                // The entry may have been flushed/evicted races are
                // impossible: fill_pending entries are not evictable.
                let idx = tags
                    .lookup(tid, reg)
                    .expect("fill completed for a vanished register");
                let e = tags.entry_mut(idx);
                debug_assert!(e.fill_pending);
                e.value = mem.read(addr, AccessSize::B8);
                e.fill_pending = false;
            }
            self.outstanding.swap_remove(i);
        }

        // Issue new requests. Blocking BSI: one request in flight, total.
        if !self.nonblocking && !self.outstanding.is_empty() {
            return;
        }

        // Fills have priority over spills (§5.3); within fills, demand
        // before prefetch.
        self.fills
            .make_contiguous()
            .sort_by_key(|f| f.prefetch as u8);
        while let Some(f) = self.fills.front().copied() {
            match dcache.access(now, f.addr, self.fill_kind(), fabric) {
                AccessResult::Hit { ready_at } => {
                    self.fills.pop_front();
                    self.push_outstanding(f, Wait::At(ready_at));
                }
                AccessResult::Miss { mshr } => {
                    self.fills.pop_front();
                    self.push_outstanding(f, Wait::Mshr(mshr));
                }
                AccessResult::NoMshr | AccessResult::NoPort => break,
            }
            if !self.nonblocking {
                return;
            }
        }

        while let Some(s) = self.spills.front().copied() {
            match dcache.access(now, s.addr, self.spill_kind(), fabric) {
                AccessResult::Hit { ready_at } => {
                    self.spills.pop_front();
                    self.outstanding.push(Outstanding {
                        wait: Wait::At(ready_at),
                        action: Action::Bookkeeping,
                    });
                }
                AccessResult::Miss { mshr } => {
                    self.spills.pop_front();
                    self.outstanding.push(Outstanding {
                        wait: Wait::Mshr(mshr),
                        action: Action::Bookkeeping,
                    });
                }
                AccessResult::NoMshr | AccessResult::NoPort => break,
            }
            if !self.nonblocking {
                return;
            }
        }
    }

    fn push_outstanding(&mut self, f: FillReq, wait: Wait) {
        let action = if f.dummy {
            Action::Bookkeeping
        } else {
            Action::Fill {
                tid: f.tid,
                reg: f.reg,
                addr: f.addr,
                demand: !f.prefetch,
            }
        };
        self.outstanding.push(Outstanding { wait, action });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use crate::vrmu::AllocOutcome;
    use virec_mem::{CacheConfig, FabricConfig};

    fn setup() -> (Bsi, Cache, Fabric, TagStore, FlatMem) {
        let bsi = Bsi::new(true, true);
        let dcache = Cache::new(CacheConfig::nmp_dcache(), 0);
        let fabric = Fabric::new(FabricConfig::default());
        let tags = TagStore::new(8, PolicyKind::Lrc);
        let mem = FlatMem::new(0, 0x1000);
        (bsi, dcache, fabric, tags, mem)
    }

    fn drive(
        bsi: &mut Bsi,
        dcache: &mut Cache,
        fabric: &mut Fabric,
        tags: &mut TagStore,
        mem: &FlatMem,
        from: u64,
        cycles: u64,
    ) -> u64 {
        for now in from..from + cycles {
            fabric.tick(now);
            dcache.tick(now, fabric);
            bsi.tick(now, dcache, fabric, tags, mem);
            if !bsi.busy() {
                return now;
            }
        }
        panic!("BSI did not drain in {cycles} cycles");
    }

    #[test]
    fn fill_loads_value_from_memory() {
        let (mut bsi, mut dc, mut fab, mut tags, mut mem) = setup();
        mem.write_u64(0x100, 0xABCD);
        let AllocOutcome::Free { idx } = tags.allocate(0, virec_isa::reg::names::X5) else {
            panic!()
        };
        tags.entry_mut(idx).fill_pending = true;
        bsi.enqueue_fill(0, virec_isa::reg::names::X5, 0x100, false);
        assert!(bsi.busy());
        assert!(bsi.fills_pending());
        drive(&mut bsi, &mut dc, &mut fab, &mut tags, &mem, 0, 1000);
        let e = tags.entry(idx);
        assert!(!e.fill_pending);
        assert_eq!(e.value, 0xABCD);
    }

    #[test]
    fn dummy_fill_is_bookkeeping_only() {
        let (mut bsi, mut dc, mut fab, mut tags, mem) = setup();
        let AllocOutcome::Free { idx } = tags.allocate(0, virec_isa::reg::names::X5) else {
            panic!()
        };
        // Dummy fill: the entry is immediately usable (not fill_pending).
        tags.entry_mut(idx).value = 0;
        bsi.enqueue_fill(0, virec_isa::reg::names::X5, 0x100, true);
        assert!(
            !bsi.fills_pending() || bsi.busy(),
            "dummy fills do not gate the pipeline as fills"
        );
        drive(&mut bsi, &mut dc, &mut fab, &mut tags, &mem, 0, 1000);
        assert_eq!(tags.entry(idx).value, 0, "dummy fill must not load data");
    }

    #[test]
    fn spill_unpins_line() {
        let (mut bsi, mut dc, mut fab, mut tags, mem) = setup();
        // Fill pins; spill unpins.
        let AllocOutcome::Free { idx } = tags.allocate(0, virec_isa::reg::names::X1) else {
            panic!()
        };
        tags.entry_mut(idx).fill_pending = true;
        bsi.enqueue_fill(0, virec_isa::reg::names::X1, 0x200, false);
        let t = drive(&mut bsi, &mut dc, &mut fab, &mut tags, &mem, 0, 1000);
        assert_eq!(dc.pin_count(0x200), 1);
        bsi.enqueue_spill(0x200);
        drive(&mut bsi, &mut dc, &mut fab, &mut tags, &mem, t + 1, 1000);
        assert_eq!(dc.pin_count(0x200), 0);
    }

    #[test]
    fn blocking_bsi_serializes() {
        let (_, mut dc, mut fab, mut tags, mut mem) = setup();
        mem.write_u64(0x100, 1);
        mem.write_u64(0x400, 2); // different line → two dcache misses

        let count_cycles = |nonblocking: bool| -> u64 {
            let mut bsi = Bsi::new(nonblocking, true);
            let mut dc2 = Cache::new(*dc.config(), 0);
            let mut fab2 = Fabric::new(*fab.config());
            let mut tags2 = TagStore::new(8, PolicyKind::Lrc);
            for (i, r) in [virec_isa::reg::names::X1, virec_isa::reg::names::X2]
                .iter()
                .enumerate()
            {
                let AllocOutcome::Free { idx } = tags2.allocate(0, *r) else {
                    panic!()
                };
                tags2.entry_mut(idx).fill_pending = true;
                bsi.enqueue_fill(0, *r, if i == 0 { 0x100 } else { 0x400 }, false);
            }
            drive(&mut bsi, &mut dc2, &mut fab2, &mut tags2, &mem, 0, 10_000)
        };
        let nb = count_cycles(true);
        let bl = count_cycles(false);
        assert!(nb < bl, "non-blocking {nb} must beat blocking {bl}");
        let _ = (&mut dc, &mut fab, &mut tags);
    }

    #[test]
    fn fills_prioritized_over_spills() {
        let (mut bsi, mut dc, mut fab, mut tags, mem) = setup();
        // One spill queued first, then a fill; with one read and one write
        // port they can both issue in a cycle, but the fill must not wait
        // behind a wall of spills on the same (write) resources. Check
        // ordering directly: enqueue many spills then one fill; the fill's
        // entry must complete within the dcache miss latency rather than
        // after all spills.
        for i in 0..16 {
            bsi.enqueue_spill(0x800 + i * 64);
        }
        let AllocOutcome::Free { idx } = tags.allocate(0, virec_isa::reg::names::X3) else {
            panic!()
        };
        tags.entry_mut(idx).fill_pending = true;
        bsi.enqueue_fill(0, virec_isa::reg::names::X3, 0x100, false);
        for now in 0..200 {
            fab.tick(now);
            dc.tick(now, &mut fab);
            bsi.tick(now, &mut dc, &mut fab, &mut tags, &mem);
            if !tags.entry(idx).fill_pending {
                return; // fill completed while spills still queued — good
            }
        }
        panic!("fill starved behind spills");
    }
}
