//! Lightweight execution tracing.
//!
//! A [`Tracer`] receives discrete pipeline events with their cycle stamps —
//! commits, context switches, thread state changes — which is usually all
//! that is needed to understand a scheduling or replacement pathology
//! without wading through cycle-by-cycle state. Tracing is off unless a
//! tracer is installed; the hot path pays one branch.

use virec_isa::Instr;

/// A discrete pipeline event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction committed on the given thread.
    Commit {
        /// Committing thread.
        tid: u8,
        /// Program counter of the instruction.
        pc: u32,
        /// The instruction.
        instr: Instr,
    },
    /// The CSL switched the running thread out.
    SwitchOut {
        /// Suspended thread.
        tid: u8,
        /// PC the thread will resume from.
        resume_pc: u32,
        /// Whether the thread blocked on a dcache miss (vs. halting).
        blocked: bool,
    },
    /// A thread was switched in and begins fetching.
    SwitchIn {
        /// Activated thread.
        tid: u8,
        /// First PC fetched.
        pc: u32,
    },
    /// A blocked thread's miss returned; it is runnable again.
    Wakeup {
        /// The thread that woke.
        tid: u8,
    },
    /// A context-switch request was suppressed by the CSL masks (§5.2).
    SwitchMasked {
        /// The thread that stays (and blocks in the mem stage).
        tid: u8,
    },
}

/// Receives `(cycle, event)` pairs.
pub type Tracer = Box<dyn FnMut(u64, TraceEvent)>;

/// A convenience tracer that records events into a vector (for tests and
/// offline analysis).
#[derive(Default)]
pub struct VecTracer {
    events: std::rc::Rc<std::cell::RefCell<Vec<(u64, TraceEvent)>>>,
}

impl VecTracer {
    /// Creates an empty recorder.
    pub fn new() -> VecTracer {
        VecTracer::default()
    }

    /// The boxed callback to install with `Core::set_tracer`.
    pub fn tracer(&self) -> Tracer {
        let sink = self.events.clone();
        Box::new(move |cycle, ev| sink.borrow_mut().push((cycle, ev)))
    }

    /// Snapshot of the recorded events.
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        self.events.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_tracer_records_in_order() {
        let rec = VecTracer::new();
        let mut t = rec.tracer();
        t(1, TraceEvent::Wakeup { tid: 0 });
        t(5, TraceEvent::SwitchMasked { tid: 1 });
        let evs = rec.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].0, 1);
        assert_eq!(evs[1], (5, TraceEvent::SwitchMasked { tid: 1 }));
    }
}
