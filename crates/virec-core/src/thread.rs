//! Hardware-thread scheduling state.

use virec_isa::Flags;
use virec_mem::MshrId;

/// Scheduling status of a hardware thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Not yet launched; the scheduler skips it until the host activates it
    /// (dynamic thread scaling — §6.1's "ViReC can schedule additional
    /// threads" without re-provisioning the RF).
    Inactive,
    /// Runnable (possibly pending an engine-side context load).
    Ready,
    /// Waiting for a dcache data miss to return (the MSHR it sleeps on).
    Blocked(MshrId),
    /// Executed `halt`.
    Halted,
}

/// One hardware thread: system-register state (PC, flags) plus scheduling
/// status. General-purpose register values live in the context engine.
#[derive(Clone, Copy, Debug)]
pub struct Thread {
    /// Resume program counter.
    pub pc: u32,
    /// Condition flags (system register, saved/restored with the sysreg
    /// line).
    pub flags: Flags,
    /// Scheduling status.
    pub status: ThreadStatus,
}

impl Thread {
    /// A fresh thread starting at `pc`.
    pub fn new(pc: u32) -> Thread {
        Thread {
            pc,
            flags: Flags::default(),
            status: ThreadStatus::Ready,
        }
    }

    /// Whether the thread can be picked by the round-robin scheduler.
    pub fn runnable(&self) -> bool {
        self.status == ThreadStatus::Ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_thread_is_runnable() {
        let t = Thread::new(3);
        assert!(t.runnable());
        assert_eq!(t.pc, 3);
    }

    #[test]
    fn blocked_and_halted_not_runnable() {
        let mut t = Thread::new(0);
        t.status = ThreadStatus::Blocked(7);
        assert!(!t.runnable());
        t.status = ThreadStatus::Halted;
        assert!(!t.runnable());
    }
}
