//! Register-cache replacement policies (§4 of the paper).
//!
//! Victim selection works on per-entry metadata:
//!
//! * **A** — a 3-bit pseudo-LRU age (0 = just used, saturates at 7). The
//!   saturation "fuzzes" long reuse distances, which is exactly the weakness
//!   LRC's commit bit repairs (§4.2, Figure 6).
//! * **T** — a 3-bit thread-recency field. On a context switch the suspended
//!   thread's registers are set to the maximum and every other register is
//!   decremented (saturating at 0), so registers of the most recently
//!   suspended thread — the one that will run *furthest in the future* under
//!   round-robin — are evicted first (§4.1, Figure 5).
//! * **C** — the commit bit: speculatively set to 1 on access, reset to 0 by
//!   the rollback queue for registers of instructions flushed at a context
//!   switch. Flushed (in-flight) registers will be replayed immediately when
//!   the thread resumes, so committed registers are better victims (§4.2).
//!
//! The eviction priority concatenates the fields with T most significant,
//! then C, then A ([`PolicyKind::Lrc`]); the register with the *highest*
//! value is evicted. The other policies use subsets of the fields, and the
//! "perfect" variants replace A with exact timestamps.

use crate::config::PolicyKind;

/// Maximum value of the 3-bit age and thread-recency fields.
pub const AGE_MAX: u8 = 7;

/// Maximum re-reference prediction value (2-bit SRRIP).
pub const RRPV_MAX: u8 = 3;

/// RRPV assigned on insertion (long re-reference prediction).
pub const RRPV_INSERT: u8 = 2;

/// Replacement metadata for one physical register (tag-store entry).
#[derive(Clone, Copy, Debug, Default)]
pub struct EntryMeta {
    /// Entry holds a live register.
    pub valid: bool,
    /// Entry may not be evicted (in-flight instruction or pending fill).
    pub locked: bool,
    /// 3-bit thread-recency field (0 = current thread).
    pub t_bits: u8,
    /// Commit bit (true = last accessing instruction committed).
    pub c_bit: bool,
    /// 3-bit pseudo-LRU age.
    pub a_bits: u8,
    /// Exact last-access stamp for the perfect-LRU variants.
    pub last_access: u64,
    /// Monotonic fill order for FIFO.
    pub fill_seq: u64,
    /// 2-bit re-reference prediction value for SRRIP (0 = near, 3 = far).
    pub rrpv: u8,
}

/// Deterministic xorshift generator for the Random policy (keeps the
/// simulator reproducible without pulling `rand` into the core crate).
#[derive(Clone, Debug)]
pub struct XorShift(u64);

impl XorShift {
    /// Creates a generator from a nonzero seed.
    pub fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Selects the victim entry index among evictable entries, or `None` when
/// every valid entry is locked.
///
/// Ties among equal priorities are broken by a rotating pointer
/// (`rotate`), modelling the arbitrary pick a hardware tree-PLRU makes
/// among entries whose saturated ages are indistinguishable — the reuse
/// "fuzzing" of §4.2 that the LRC commit bit repairs. Callers advance the
/// pointer per eviction. Everything stays deterministic.
pub fn select_victim(
    policy: PolicyKind,
    entries: &[EntryMeta],
    rotate: u64,
    rng: &mut XorShift,
) -> Option<usize> {
    let evictable = || {
        entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid && !e.locked)
    };

    if policy == PolicyKind::Random {
        let candidates: Vec<usize> = evictable().map(|(i, _)| i).collect();
        if candidates.is_empty() {
            return None;
        }
        return Some(candidates[(rng.next_u64() % candidates.len() as u64) as usize]);
    }

    let best = evictable().map(|(_, e)| priority(policy, e)).max()?;
    let ties: Vec<usize> = evictable()
        .filter(|(_, e)| priority(policy, e) == best)
        .map(|(i, _)| i)
        .collect();
    Some(ties[(rotate % ties.len() as u64) as usize])
}

/// Eviction priority: the entry with the highest value is evicted first.
fn priority(policy: PolicyKind, e: &EntryMeta) -> u128 {
    // Perfect-LRU stamp inverted so that *older* entries rank higher.
    let oldness = (u64::MAX - e.last_access) as u128;
    let fifo_oldness = (u64::MAX - e.fill_seq) as u128;
    match policy {
        PolicyKind::Plru => e.a_bits as u128,
        PolicyKind::Lru => oldness,
        PolicyKind::MrtPlru => ((e.t_bits as u128) << 3) | e.a_bits as u128,
        PolicyKind::MrtLru => ((e.t_bits as u128) << 64) | oldness,
        PolicyKind::Lrc => ((e.t_bits as u128) << 4) | ((e.c_bit as u128) << 3) | e.a_bits as u128,
        PolicyKind::Fifo => fifo_oldness,
        PolicyKind::Random => 0,
        PolicyKind::Srrip => e.rrpv as u128,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(t: u8, c: bool, a: u8) -> EntryMeta {
        EntryMeta {
            valid: true,
            locked: false,
            t_bits: t,
            c_bit: c,
            a_bits: a,
            last_access: 0,
            fill_seq: 0,
            rrpv: 0,
        }
    }

    fn pick(policy: PolicyKind, entries: &[EntryMeta]) -> Option<usize> {
        let mut rng = XorShift::new(42);
        select_victim(policy, entries, 0, &mut rng)
    }

    #[test]
    fn plru_ignores_thread_bits() {
        // Entry 0: current thread but ancient age. Entry 1: suspended thread,
        // young age. PLRU wrongly evicts the current thread's register —
        // the failure mode of Figure 5(b).
        let entries = [meta(0, true, 7), meta(7, true, 0)];
        assert_eq!(pick(PolicyKind::Plru, &entries), Some(0));
        // MRT-PLRU fixes it (Figure 5(c)).
        assert_eq!(pick(PolicyKind::MrtPlru, &entries), Some(1));
    }

    #[test]
    fn lrc_prefers_committed_over_inflight() {
        // Same thread, same saturated age; one register was committed, the
        // other was in flight when the switch happened (Figure 6).
        let entries = [meta(7, false, 7), meta(7, true, 7)];
        assert_eq!(pick(PolicyKind::MrtPlru, &entries), Some(0), "tie → index");
        assert_eq!(
            pick(PolicyKind::Lrc, &entries),
            Some(1),
            "LRC must evict the committed register"
        );
    }

    #[test]
    fn lrc_thread_bits_dominate_commit_bit() {
        // An in-flight register of a recently suspended thread is still a
        // better victim than a committed register of the current thread.
        let entries = [meta(0, true, 7), meta(7, false, 0)];
        assert_eq!(pick(PolicyKind::Lrc, &entries), Some(1));
    }

    #[test]
    fn perfect_lru_uses_stamps() {
        let mut e0 = meta(0, true, 0);
        e0.last_access = 100;
        let mut e1 = meta(0, true, 0);
        e1.last_access = 50; // older
        assert_eq!(pick(PolicyKind::Lru, &[e0, e1]), Some(1));
    }

    #[test]
    fn mrt_lru_orders_by_thread_then_stamp() {
        let mut recent_far_thread = meta(5, true, 0);
        recent_far_thread.last_access = 1000;
        let mut old_near_thread = meta(1, true, 0);
        old_near_thread.last_access = 1;
        assert_eq!(
            pick(PolicyKind::MrtLru, &[old_near_thread, recent_far_thread]),
            Some(1),
            "thread distance outranks raw age"
        );
    }

    #[test]
    fn fifo_evicts_oldest_fill() {
        let mut e0 = meta(0, true, 0);
        e0.fill_seq = 10;
        let mut e1 = meta(0, true, 0);
        e1.fill_seq = 3;
        assert_eq!(pick(PolicyKind::Fifo, &[e0, e1]), Some(1));
    }

    #[test]
    fn locked_and_invalid_are_never_victims() {
        let mut locked = meta(7, true, 7);
        locked.locked = true;
        let invalid = EntryMeta::default();
        let free = meta(0, false, 0);
        for p in PolicyKind::ALL {
            assert_eq!(pick(p, &[locked, invalid, free]), Some(2), "{p:?}");
        }
    }

    #[test]
    fn all_locked_yields_none() {
        let mut e = meta(7, true, 7);
        e.locked = true;
        for p in PolicyKind::ALL {
            assert_eq!(pick(p, &[e, e]), None, "{p:?}");
        }
    }

    #[test]
    fn srrip_orders_by_rrpv() {
        let mut near = meta(7, true, 7);
        near.rrpv = 0;
        let mut far = meta(0, true, 0);
        far.rrpv = 3;
        assert_eq!(
            pick(PolicyKind::Srrip, &[near, far]),
            Some(1),
            "SRRIP evicts the distant-re-reference entry regardless of \
             thread recency — the mismatch §7 describes"
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let entries = [meta(0, true, 0); 8];
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        for _ in 0..32 {
            assert_eq!(
                select_victim(PolicyKind::Random, &entries, 0, &mut a),
                select_victim(PolicyKind::Random, &entries, 0, &mut b)
            );
        }
    }

    #[test]
    fn random_covers_all_candidates() {
        let entries = [meta(0, true, 0); 4];
        let mut rng = XorShift::new(99);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = select_victim(PolicyKind::Random, &entries, 0, &mut rng).unwrap();
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "random never chose some entry");
    }

    #[test]
    fn tie_break_rotates_over_ties() {
        let entries = [meta(3, true, 3); 5];
        let mut rng = XorShift::new(1);
        // With rotate = k, the k-th tied candidate is chosen (mod ties).
        for k in 0..10u64 {
            let v = select_victim(PolicyKind::Plru, &entries, k, &mut rng).unwrap();
            assert_eq!(v, (k % 5) as usize);
        }
        // Non-tied entries are unaffected by the rotation pointer.
        let mut mixed = [meta(0, true, 0); 4];
        mixed[2] = meta(7, true, 7);
        for k in 0..8u64 {
            let v = select_victim(PolicyKind::Lrc, &mixed, k, &mut rng).unwrap();
            assert_eq!(v, 2, "unique max must always win");
        }
    }
}
