//! The context-engine abstraction.
//!
//! The pipeline is identical for every architecture alternative in the
//! paper's evaluation; what differs is how thread register contexts are
//! stored and made available. A [`ContextEngine`] answers the decode stage's
//! register lookups and manages storage:
//!
//! * [`crate::engines::VirecEngine`] — the paper's contribution (VRMU + BSI).
//! * [`crate::engines::BankedEngine`] — statically banked full contexts.
//! * [`crate::engines::SoftwareEngine`] — save/restore through memory.
//! * [`crate::engines::PrefetchEngine`] — double-buffer context prefetching
//!   (full or oracle-exact).

use crate::regions::RegRegion;
use crate::stats::CoreStats;
use virec_isa::{FlatMem, Instr, Reg};
use virec_mem::{Cache, Fabric};

/// Mutable access to the core-owned resources an engine needs each cycle.
pub struct EngineEnv<'a> {
    /// The data cache (the ViReC backing store).
    pub dcache: &'a mut Cache,
    /// The crossbar + DRAM fabric.
    pub fabric: &'a mut Fabric,
    /// Functional memory (register-backing region included).
    pub mem: &'a mut FlatMem,
    /// This core's register-backing region layout.
    pub region: RegRegion,
    /// Statistics sink.
    pub stats: &'a mut CoreStats,
}

/// A deterministic fault aimed at engine-internal state, delivered by the
/// fault-injection subsystem between pipeline cycles. Engines that do not
/// model the targeted structure report the fault as not applicable by
/// returning `None` from [`ContextEngine::inject_fault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineFault {
    /// Flip `bit` of the value held in the `nth` occupied physical-register
    /// slot (a tag-store entry for ViReC, a bank cell for banked engines).
    /// `nth` wraps modulo the current occupancy.
    RegValue {
        /// Which occupied slot (modulo occupancy).
        nth: u64,
        /// Which bit of the 64-bit value (modulo 64).
        bit: u8,
    },
    /// Corrupt the `nth` occupied rollback-queue slot: rewrite one recorded
    /// register identity (or toggle the is-mem CSL signal), modelling an
    /// upset in the VRMU's in-flight tracking.
    RollbackSlot {
        /// Which queue slot (modulo occupancy).
        nth: u64,
        /// Selects the register/bit within the slot.
        bit: u8,
    },
    /// Mark the `nth` occupied tag-store entry as waiting for a fill that
    /// will never arrive (a lost BSI response).
    StuckFill {
        /// Which occupied entry (modulo occupancy).
        nth: u64,
    },
}

/// Outcome of retiring a VRMU way via [`ContextEngine::retire_way`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WayRetire {
    /// Physical index of the way that was masked out.
    pub idx: usize,
    /// Whether a provisioned spare way was activated to replace it (false
    /// means the store shrank — degraded capacity).
    pub spared: bool,
    /// Human-readable description of the retired site for campaign logs.
    pub desc: String,
}

/// Result of a decode-stage register acquisition attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// All registers of the instruction are available; it may issue.
    Ready,
    /// Fills are in flight (or no victim was available); retry next cycle.
    Pending,
}

/// Per-quantum register-use sets recorded from a run, used as the oracle for
/// exact-context prefetching (§6.1: "assuming an oracle prediction").
#[derive(Clone, Debug, Default)]
pub struct OracleSchedule {
    /// `sets[tid][quantum]` = bitmask over architectural registers used in
    /// that scheduling quantum.
    pub sets: Vec<Vec<u32>>,
}

impl OracleSchedule {
    /// Register mask for a thread's `quantum`-th run, if recorded.
    pub fn mask(&self, tid: usize, quantum: usize) -> Option<u32> {
        self.sets.get(tid).and_then(|v| v.get(quantum)).copied()
    }
}

/// One scheduling quantum observed by the core's quantum tracer
/// ([`crate::Core::enable_quantum_trace`]). Register masks use bit `i` for
/// `x{i}` and bit 31 for the condition flags, matching
/// `virec_isa::dataflow`.
#[derive(Clone, Copy, Debug)]
pub struct QuantumRecord {
    /// The thread that ran.
    pub tid: u8,
    /// PC the quantum started fetching from.
    pub start_pc: u32,
    /// PC the thread will replay from after the switch-out flush.
    pub resume_pc: u32,
    /// Registers of every decode-acquired instruction (no flags bit; the
    /// same mask the prefetch oracle records).
    pub used: u32,
    /// Registers (and flags) read before being written within the quantum —
    /// the true demand set, a subset of static `live_in(start_pc)`.
    pub demand: u32,
    /// Registers resident in engine storage at switch-out, sampled *after*
    /// the §5.1 rollback-queue compaction (zero if the engine has no
    /// per-register bookkeeping).
    pub resident: u32,
    /// Subset of `resident` whose commit (C) bit is set.
    pub committed: u32,
    /// Whether `resident`/`committed` carry real engine state.
    pub has_live_bits: bool,
    /// Whether the quantum ended because the thread halted.
    pub halted: bool,
}

/// All quanta of a run, in switch-out order.
#[derive(Clone, Debug, Default)]
pub struct QuantumTrace {
    /// Closed quanta (a run aborted by the cycle budget may additionally
    /// have one unclosed quantum in flight, which is dropped).
    pub quanta: Vec<QuantumRecord>,
}

/// Storage and availability of thread register contexts.
pub trait ContextEngine {
    /// Attempts to make every register of `instr` available for `tid`.
    /// Called from decode once per cycle until it returns `Ready`; on
    /// `Ready` the engine has locked the registers and recorded the
    /// instruction as in-flight.
    fn acquire(
        &mut self,
        now: u64,
        tid: u8,
        instr: &Instr,
        env: &mut EngineEnv<'_>,
    ) -> AcquireOutcome;

    /// Reads the current value of a resident register.
    fn read(&self, tid: u8, reg: Reg) -> u64;

    /// Writes a resident register.
    fn write(&mut self, tid: u8, reg: Reg, value: u64);

    /// The oldest in-flight instruction committed.
    fn commit_instr(&mut self, tid: u8, instr: &Instr);

    /// A branch redirect squashed the youngest in-flight (acquired but not
    /// issued) instruction.
    fn abort_youngest(&mut self, tid: u8, instr: &Instr);

    /// A context switch flushed every in-flight instruction of `tid`
    /// (the rollback-queue compaction of §5.1).
    fn flush_all_inflight(&mut self, tid: u8);

    /// The CSL switched from `out_tid` to `in_tid`.
    fn on_switch(&mut self, now: u64, out_tid: u8, in_tid: u8, env: &mut EngineEnv<'_>);

    /// Whether `tid` can be scheduled right now (e.g. its context bank is
    /// loaded). Engines may use this call to start loading.
    fn thread_ready(&mut self, now: u64, tid: u8, env: &mut EngineEnv<'_>) -> bool;

    /// Thread `tid` halted; its context storage may be reclaimed.
    fn on_thread_halt(&mut self, tid: u8, env: &mut EngineEnv<'_>) {
        let _ = (tid, env);
    }

    /// Advances engine-internal machinery (BSI, transfer queues) one cycle.
    fn tick(&mut self, now: u64, env: &mut EngineEnv<'_>);

    /// Earliest future cycle at which [`ContextEngine::tick`] could do
    /// anything beyond fixed per-cycle bookkeeping, assuming no new work
    /// arrives from the pipeline. Called after `tick(now)` by the
    /// event-driven runner; `None` means fully quiescent. The default is
    /// the always-safe dense answer — every cycle is an event — so engines
    /// that do not implement the query never allow skipping past them.
    fn next_event(&self, now: u64) -> Option<u64> {
        Some(now + 1)
    }

    /// CSL mask: a register load or store is outstanding in the BSI (§5.2).
    fn bsi_busy(&self) -> bool {
        false
    }

    /// CSL mask: whether the oldest in-flight instruction is a memory
    /// operation (`None` when unknown or the backend is empty, which the
    /// CSL treats as permissive).
    fn oldest_inflight_is_mem(&self) -> Option<bool> {
        None
    }

    /// Applies a fault to engine-internal state. Returns a description of
    /// the corrupted site, or `None` when the engine has no such structure
    /// (or it is currently empty) — the campaign records the injection as
    /// not applied.
    fn inject_fault(&mut self, fault: EngineFault) -> Option<String> {
        let _ = fault;
        None
    }

    /// RAS hook: permanently retires the `nth` occupied physical-register
    /// way (same `nth`-modulo-occupancy addressing as
    /// [`EngineFault::RegValue`]), relocating or spilling its occupant and
    /// activating a spare way when `use_spare` is set and one is
    /// provisioned. Returns `None` when the engine has no maskable ways or
    /// retiring would shrink the store below its in-flight floor.
    fn retire_way(
        &mut self,
        nth: u64,
        use_spare: bool,
        env: &mut EngineEnv<'_>,
    ) -> Option<WayRetire> {
        let _ = (nth, use_spare, env);
        None
    }

    /// RAS hook: re-applies a way retirement by *physical* index after a
    /// checkpoint restore rewound the tag store (idempotent). Returns
    /// whether the mask is in place afterwards.
    fn remask_way(&mut self, idx: usize, use_spare: bool, env: &mut EngineEnv<'_>) -> bool {
        let _ = (idx, use_spare, env);
        false
    }

    /// Spare VRMU ways still available for retirement (0 for engines
    /// without maskable ways).
    fn spare_ways_left(&self) -> usize {
        0
    }

    /// `(resident, committed)` architectural-register masks for `tid`:
    /// which registers currently occupy engine storage and which of those
    /// have their commit (C) bit set (§5.1). `None` when the engine keeps
    /// no per-register residency bookkeeping (banked/software/prefetch
    /// engines hold full contexts).
    fn live_bits(&self, tid: u8) -> Option<(u32, u32)> {
        let _ = tid;
        None
    }

    /// `(occupied, capacity)` of the engine's register storage, for
    /// watchdog dumps and fault-site selection.
    fn occupancy(&self) -> (usize, usize) {
        (0, 0)
    }

    /// One-line summary of engine-internal state for livelock dumps.
    fn debug_state(&self) -> String {
        let (used, cap) = self.occupancy();
        format!("occupancy {used}/{cap}")
    }

    /// Writes all live register state back to the backing region so the
    /// final memory image can be compared against the golden interpreter.
    fn drain(&mut self, region: RegRegion, mem: &mut FlatMem);

    /// Deep-copies the engine, including all in-flight machinery, for
    /// architectural checkpointing (the runner snapshots the whole machine
    /// and restores it on a detected-uncorrectable fault).
    fn clone_box(&self) -> Box<dyn ContextEngine>;
}
