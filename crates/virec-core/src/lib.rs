#![warn(missing_docs)]

//! # virec-core
//!
//! The ViReC near-memory processor core (§3–§5 of the paper) and every
//! baseline it is evaluated against:
//!
//! * [`core::Core`] — a single-issue, in-order, 5-stage pipeline with
//!   coarse-grain multithreading and the context-switching logic (CSL).
//! * [`vrmu`] — the Virtual Register Management Unit: a fully associative
//!   tag store with T/C/A replacement metadata and the rollback queue.
//! * [`policy`] — register-cache replacement policies, including the
//!   paper's Least Recently Committed (LRC) policy.
//! * [`bsi`] — the backing-store interface with fill priority, dummy-value
//!   fills and non-blocking pipelined requests.
//! * [`engines`] — the context engines: ViReC, banked, software switching,
//!   and full/exact double-buffer prefetching.

pub mod bsi;
pub mod config;
pub mod core;
pub mod engine;
pub mod engines;
pub mod ooo;
pub mod policy;
pub mod regions;
pub mod stats;
pub mod thread;
pub mod trace;
pub mod vrmu;

pub use config::{CoreConfig, EngineKind, PolicyKind};
pub use core::Core;
pub use engine::{
    AcquireOutcome, ContextEngine, EngineEnv, EngineFault, OracleSchedule, QuantumRecord,
    QuantumTrace, WayRetire,
};
pub use ooo::{run_ooo, OooConfig, OooResult};
pub use regions::RegRegion;
pub use stats::CoreStats;
pub use thread::{Thread, ThreadStatus};
pub use trace::{TraceEvent, Tracer, VecTracer};
