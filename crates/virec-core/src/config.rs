//! Core configuration and the Table 1 presets.

use virec_mem::CacheConfig;

/// Which context-management engine the core uses (the architecture
/// alternatives compared throughout the paper's evaluation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Banked register file: one full 32-register bank per thread,
    /// statically provisioned (Figure 3(b)).
    Banked,
    /// ViReC: the register file is a cache of partial contexts managed by
    /// the VRMU (Figure 3(c)).
    ViReC,
    /// Software context switching: every switch saves and restores the full
    /// context with ordinary loads/stores (Figure 3(a)).
    Software,
    /// Double-buffer prefetching of the **full** context of the next thread
    /// (the first prefetching alternative of §6.1).
    PrefetchFull,
    /// Double-buffer prefetching of the **exact** register set the next
    /// thread will use, with oracle knowledge (the second alternative).
    PrefetchExact,
}

/// Register-cache replacement policies (§4 and Figure 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Pseudo-LRU over 3-bit ages only (prior work, e.g. the NSF).
    Plru,
    /// Perfect LRU (exact timestamps).
    Lru,
    /// Most-Recent-Thread PLRU: thread-recency bits concatenated above ages.
    MrtPlru,
    /// Most-Recent-Thread perfect LRU.
    MrtLru,
    /// Least Recently Committed: MRT-PLRU plus the commit bit (the paper's
    /// contribution).
    Lrc,
    /// FIFO by fill order (baseline).
    Fifo,
    /// Uniform-random victim (baseline).
    Random,
    /// Static RRIP (2-bit re-reference interval prediction, \[33\]): the
    /// paper's §7 argues such policies do not fit register caching because
    /// register reuse distance depends on instruction and context-switch
    /// behaviour rather than access recency classes — this variant lets us
    /// measure that claim.
    Srrip,
}

impl PolicyKind {
    /// Every policy, for sweep experiments.
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Plru,
        PolicyKind::Lru,
        PolicyKind::MrtPlru,
        PolicyKind::MrtLru,
        PolicyKind::Lrc,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Srrip,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Plru => "PLRU",
            PolicyKind::Lru => "LRU",
            PolicyKind::MrtPlru => "MRT-PLRU",
            PolicyKind::MrtLru => "MRT-LRU",
            PolicyKind::Lrc => "LRC",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Random => "Random",
            PolicyKind::Srrip => "SRRIP",
        }
    }
}

/// Full configuration of one near-memory core.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Hardware threads the core schedules (paper: 4–10).
    pub nthreads: usize,
    /// Context engine.
    pub engine: EngineKind,
    /// Physical register-file entries for [`EngineKind::ViReC`] and the
    /// prefetching engines (Table 1: 24–120). Ignored by banked/software.
    pub phys_regs: usize,
    /// Replacement policy for the ViReC register cache.
    pub policy: PolicyKind,
    /// Store-queue entries (Table 1: 5).
    pub sq_entries: usize,
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache (the ViReC backing store).
    pub dcache: CacheConfig,
    /// Non-blocking BSI pipelines several fill/spill requests (§5.3). The
    /// NSF baseline sets this to false.
    pub nonblocking_bsi: bool,
    /// Write dummy values for destination-only registers instead of waiting
    /// for the backing store (§5.3). The NSF baseline sets this to false.
    pub dummy_fill_opt: bool,
    /// Pin register lines in the dcache while their registers are live in
    /// the RF (§5.3). The NSF baseline sets this to false.
    pub reg_line_pinning: bool,
    /// Static backward-taken/forward-not-taken branch prediction.
    pub branch_pred: bool,
    /// **Extension (paper future work):** on each eviction, evict up to
    /// this many registers at once (committed registers of the same victim
    /// thread), amortizing spill traffic and pre-freeing entries. 1 =
    /// the paper's baseline single-victim behaviour.
    pub group_evict: usize,
    /// **Extension (paper future work):** combine prefetching with ViReC
    /// caching — on a context switch, prefetch the registers the incoming
    /// thread held at its last suspension (bounded, low priority, never on
    /// the critical path).
    pub switch_prefetch: bool,
    /// Spare VRMU CAM ways provisioned for RAS retirement: physically
    /// present but masked until a failing way is retired onto one. 0 (the
    /// default) keeps the tag store exactly as the paper sizes it.
    pub spare_ways: usize,
    /// Maximum cycles a single run may take before
    /// aborting (safety net for misconfigured experiments).
    pub max_cycles: u64,
}

impl CoreConfig {
    /// The paper's ViReC core (Table 1): 1 GHz single-issue, 24–120 regs,
    /// 5-entry SQ, 1 outstanding load, 32 KiB icache / 8 KiB dcache.
    pub fn virec(nthreads: usize, phys_regs: usize) -> CoreConfig {
        CoreConfig {
            nthreads,
            engine: EngineKind::ViReC,
            phys_regs,
            policy: PolicyKind::Lrc,
            sq_entries: 5,
            icache: CacheConfig::nmp_icache(),
            dcache: CacheConfig::nmp_dcache(),
            nonblocking_bsi: true,
            dummy_fill_opt: true,
            reg_line_pinning: true,
            branch_pred: true,
            group_evict: 1,
            switch_prefetch: false,
            spare_ways: 0,
            max_cycles: 200_000_000,
        }
    }

    /// The paper's banked core (Table 1): one 32-register bank per thread.
    pub fn banked(nthreads: usize) -> CoreConfig {
        CoreConfig {
            engine: EngineKind::Banked,
            phys_regs: nthreads * 32,
            ..CoreConfig::virec(nthreads, nthreads * 32)
        }
    }

    /// A plain single-thread in-order core (the CVA6-like baseline).
    pub fn inorder() -> CoreConfig {
        CoreConfig::banked(1)
    }

    /// Software context switching on top of the banked pipeline structure.
    pub fn software(nthreads: usize) -> CoreConfig {
        CoreConfig {
            engine: EngineKind::Software,
            ..CoreConfig::virec(nthreads, 32)
        }
    }

    /// Full-context double-buffer prefetching (§6.1).
    pub fn prefetch_full(nthreads: usize, regs_per_thread: usize) -> CoreConfig {
        CoreConfig {
            engine: EngineKind::PrefetchFull,
            ..CoreConfig::virec(nthreads, 2 * regs_per_thread)
        }
    }

    /// Oracle exact-context prefetching (§6.1).
    pub fn prefetch_exact(nthreads: usize, regs_per_thread: usize) -> CoreConfig {
        CoreConfig {
            engine: EngineKind::PrefetchExact,
            ..CoreConfig::virec(nthreads, 2 * regs_per_thread)
        }
    }

    /// The NSF baseline \[41\]: register caching with PLRU and none of the
    /// ViReC system optimizations.
    pub fn nsf(nthreads: usize, phys_regs: usize) -> CoreConfig {
        CoreConfig {
            policy: PolicyKind::Plru,
            nonblocking_bsi: false,
            dummy_fill_opt: false,
            reg_line_pinning: false,
            ..CoreConfig::virec(nthreads, phys_regs)
        }
    }

    /// Physical RF entries for a ViReC core storing `ctx_fraction` of each
    /// thread's active context (Figure 1/9/10 sweeps: 0.4, 0.6, 0.8, 1.0).
    pub fn virec_for_context(
        nthreads: usize,
        active_ctx_regs: usize,
        ctx_fraction: f64,
    ) -> CoreConfig {
        let regs = ((active_ctx_regs * nthreads) as f64 * ctx_fraction).ceil() as usize;
        // The RF must at least hold the registers of one in-flight
        // instruction per pipeline stage.
        CoreConfig::virec(nthreads, regs.max(12))
    }

    /// Validates internal consistency. Called by `Core::new`.
    pub fn validate(&self) {
        assert!(self.nthreads >= 1, "need at least one thread");
        assert!(self.sq_entries >= 1);
        if self.engine == EngineKind::ViReC {
            assert!(
                self.phys_regs >= 12,
                "ViReC RF must hold at least 12 registers (in-flight window), got {}",
                self.phys_regs
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        CoreConfig::virec(8, 64).validate();
        CoreConfig::banked(8).validate();
        CoreConfig::inorder().validate();
        CoreConfig::software(4).validate();
        CoreConfig::nsf(8, 32).validate();
        CoreConfig::prefetch_full(4, 8).validate();
    }

    #[test]
    fn banked_has_full_contexts() {
        let c = CoreConfig::banked(8);
        assert_eq!(c.phys_regs, 8 * 32);
        assert_eq!(c.engine, EngineKind::Banked);
    }

    #[test]
    fn context_fraction_sizing() {
        // gather: 8 active regs, 4 threads → 32 regs at 100%, 13 at 40%.
        let full = CoreConfig::virec_for_context(4, 8, 1.0);
        assert_eq!(full.phys_regs, 32);
        let small = CoreConfig::virec_for_context(4, 8, 0.4);
        assert_eq!(small.phys_regs, 13);
        // 8 threads: 26 at 40%, 64 at 100% (paper's ranges).
        assert_eq!(CoreConfig::virec_for_context(8, 8, 0.4).phys_regs, 26);
        assert_eq!(CoreConfig::virec_for_context(8, 8, 1.0).phys_regs, 64);
    }

    #[test]
    fn nsf_disables_optimizations() {
        let c = CoreConfig::nsf(8, 32);
        assert!(!c.nonblocking_bsi);
        assert!(!c.dummy_fill_opt);
        assert!(!c.reg_line_pinning);
        assert_eq!(c.policy, PolicyKind::Plru);
    }

    #[test]
    #[should_panic(expected = "at least 12 registers")]
    fn tiny_virec_rf_rejected() {
        CoreConfig::virec(8, 4).validate();
    }

    #[test]
    fn policy_labels_unique() {
        let mut labels: Vec<_> = PolicyKind::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), PolicyKind::ALL.len());
    }
}
