//! A trace-driven out-of-order core model for the Figure 1 comparison
//! point (the Arm N1-like host processor).
//!
//! The paper simulates a full OoO core in gem5; reproducing that fidelity
//! is out of scope for a single scatter point, so this is a classic
//! limit-study dataflow model over the golden interpreter's dynamic trace:
//!
//! * true data dependences through registers and flags are respected;
//! * instructions issue when their operands are ready, subject to issue
//!   width, load-port width, and a finite reorder window (in-order retire);
//! * loads probe a simple two-level cache model for their latency, with a
//!   bounded number of outstanding misses (MSHRs).
//!
//! This reproduces what matters for the figure: an OoO core extracts MLP
//! from independent loop iterations until the window or the MSHRs saturate,
//! yielding a multiple of in-order performance at a large area multiple —
//! with an ILP ceiling for dependence chains (§2).

use crate::config::EngineKind;
use virec_isa::{ExecOutcome, FlatMem, Instr, Interpreter, Program, Reg, ThreadCtx};

/// Parameters of the OoO model (defaults follow Table 1's N1-like core,
/// expressed in that core's 2 GHz cycles).
#[derive(Clone, Copy, Debug)]
pub struct OooConfig {
    /// Reorder-buffer entries (retire window).
    pub rob: usize,
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// Loads issued per cycle.
    pub load_ports: usize,
    /// Outstanding misses supported.
    pub mshrs: usize,
    /// L1 hit latency.
    pub l1_latency: u64,
    /// L2 hit latency.
    pub l2_latency: u64,
    /// Memory latency.
    pub mem_latency: u64,
    /// L1 size in bytes (4-way assumed).
    pub l1_bytes: usize,
    /// L2 size in bytes (8-way assumed).
    pub l2_bytes: usize,
    /// Minimum gap between successive memory-miss line transfers (cycles) —
    /// the DRAM-bandwidth constraint that bounds achievable MLP. Without
    /// it the model degenerates into a pure latency-overlap limit study and
    /// overstates OoO performance on streaming-miss kernels.
    pub mem_bus_gap: u64,
    /// Clock ratio versus the 1 GHz near-memory cores (2.0 for the N1).
    pub clock_ratio: f64,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig {
            rob: 224,
            issue_width: 8,
            load_ports: 2,
            mshrs: 32,
            l1_latency: 4,
            l2_latency: 12,
            mem_latency: 110,
            l1_bytes: 32 * 1024,
            l2_bytes: 1024 * 1024,
            mem_bus_gap: 16,
            clock_ratio: 2.0,
        }
    }
}

/// Simple LRU tag array used by the trace model.
struct TagArray {
    sets: Vec<Vec<(u64, u64)>>, // (tag, last_used)
    assoc: usize,
    nsets: usize,
    stamp: u64,
}

impl TagArray {
    fn new(bytes: usize, assoc: usize) -> TagArray {
        let nsets = (bytes / 64 / assoc).max(1);
        TagArray {
            sets: vec![Vec::new(); nsets],
            assoc,
            nsets,
            stamp: 0,
        }
    }

    /// Returns true on hit; allocates on miss.
    fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let line = addr >> 6;
        let set = (line as usize) % self.nsets;
        let tag = line / self.nsets as u64;
        let ways = &mut self.sets[set];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = self.stamp;
            return true;
        }
        if ways.len() >= self.assoc {
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("nonempty");
            ways.swap_remove(lru);
        }
        ways.push((tag, self.stamp));
        false
    }
}

/// Result of an OoO model run.
#[derive(Clone, Copy, Debug)]
pub struct OooResult {
    /// Cycles in the OoO core's own clock domain.
    pub core_cycles: u64,
    /// Cycles normalized to the 1 GHz near-memory clock (divided by the
    /// clock ratio) — directly comparable to `Core` results.
    pub nmp_equivalent_cycles: u64,
    /// Dynamic instructions.
    pub instructions: u64,
}

impl OooResult {
    /// Instructions per (OoO-domain) cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.core_cycles as f64
    }
}

/// Runs the single-threaded OoO model over `program` (one context runs the
/// whole iteration space — the host-processor configuration of Figure 1).
pub fn run_ooo(
    cfg: &OooConfig,
    program: &Program,
    mem: &mut FlatMem,
    init_regs: &[(Reg, u64)],
    max_instrs: u64,
) -> OooResult {
    // Dynamic trace via the golden interpreter.
    let mut ctx = ThreadCtx::new();
    for &(r, v) in init_regs {
        ctx.set(r, v);
    }
    let mut trace: Vec<(Instr, Option<u64>)> = Vec::new();
    {
        let mut interp = Interpreter::new(program, mem);
        let mut steps = 0u64;
        while !ctx.halted && steps < max_instrs {
            let i = program.fetch(ctx.pc);
            let addr = if i.is_mem() {
                let (base, offset) = match i {
                    Instr::Ldr { base, offset, .. } | Instr::Str { base, offset, .. } => {
                        (base, offset)
                    }
                    _ => unreachable!(),
                };
                Some(virec_isa::interp::effective_address(&ctx, base, offset))
            } else {
                None
            };
            trace.push((i, addr));
            interp.step(&mut ctx);
            steps += 1;
        }
        assert!(ctx.halted, "OoO trace did not reach halt in {max_instrs}");
        let _ = ExecOutcome::Halted {
            instructions: steps,
        };
    }

    // Dataflow scheduling over the trace.
    let mut l1 = TagArray::new(cfg.l1_bytes, 4);
    let mut l2 = TagArray::new(cfg.l2_bytes, 8);
    let mut reg_ready = [0u64; 32];
    let mut flags_ready = 0u64;
    let mut retire_time = vec![0u64; trace.len()];
    // Resource schedules: next free cycle per issue slot modelled by
    // counting issues per cycle.
    let mut issued_at = std::collections::HashMap::<u64, usize>::new();
    let mut loads_at = std::collections::HashMap::<u64, usize>::new();
    let mut miss_completion: Vec<u64> = Vec::new(); // outstanding misses
    let mut mem_bus_free = 0u64; // DRAM bandwidth serialization point

    for (i, (instr, addr)) in trace.iter().enumerate() {
        // Window: cannot issue before instruction i-ROB retired.
        let mut ready = if i >= cfg.rob {
            retire_time[i - cfg.rob]
        } else {
            0
        };
        for r in instr.srcs().iter() {
            ready = ready.max(reg_ready[r.index()]);
        }
        if instr.reads_flags() {
            ready = ready.max(flags_ready);
        }

        // Find an issue cycle with slack in width and load ports.
        let mut t = ready;
        loop {
            let w = issued_at.entry(t).or_insert(0);
            if *w < cfg.issue_width {
                if instr.is_load() {
                    let lp = loads_at.entry(t).or_insert(0);
                    if *lp < cfg.load_ports {
                        // MSHR check for misses handled below.
                        *lp += 1;
                        issued_at.entry(t).and_modify(|x| *x += 1);
                        break;
                    }
                } else {
                    *w += 1;
                    break;
                }
            }
            t += 1;
        }

        let latency = if let Some(a) = addr {
            if instr.is_load() {
                if l1.access(*a) {
                    cfg.l1_latency
                } else if l2.access(*a) {
                    cfg.l2_latency
                } else {
                    // Miss to memory: bounded outstanding misses and a
                    // serialized line transfer on the memory bus.
                    miss_completion.retain(|&c| c > t);
                    if miss_completion.len() >= cfg.mshrs {
                        let earliest = *miss_completion.iter().min().expect("nonempty");
                        t = t.max(earliest);
                        miss_completion.retain(|&c| c > t);
                    }
                    mem_bus_free = mem_bus_free.max(t) + cfg.mem_bus_gap;
                    let completion = mem_bus_free + cfg.mem_latency;
                    miss_completion.push(completion);
                    completion - t
                }
            } else {
                // Stores retire into the write buffer.
                if !l1.access(*a) {
                    l2.access(*a);
                }
                1
            }
        } else {
            match instr {
                Instr::Alu { op, .. } => op.latency() as u64,
                Instr::Madd { .. } => 3,
                _ => 1,
            }
        };

        let done = t + latency;
        for r in instr.dsts().iter() {
            reg_ready[r.index()] = done;
        }
        if instr.writes_flags() {
            flags_ready = done;
        }
        // In-order retire.
        retire_time[i] = if i == 0 {
            done
        } else {
            retire_time[i - 1].max(done)
        };
    }

    let core_cycles = *retire_time.last().unwrap_or(&1);
    OooResult {
        core_cycles,
        nmp_equivalent_cycles: (core_cycles as f64 / cfg.clock_ratio) as u64,
        instructions: trace.len() as u64,
    }
}

/// Marker so reports can label the OoO point consistently.
pub fn ooo_engine_label() -> &'static str {
    let _ = EngineKind::Banked;
    "ooo"
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::reg::names::*;
    use virec_isa::{Asm, Cond};

    fn gather_setup(n: u64) -> (Program, FlatMem, Vec<(Reg, u64)>) {
        let data = 0x10_000u64;
        let idx = data + n * 8;
        let mut mem = FlatMem::new(0, 0x100_000);
        for i in 0..n {
            mem.write_u64(data + i * 8, i);
            mem.write_u64(idx + i * 8, (i * 7919) % n);
        }
        let mut a = Asm::new("gather");
        a.label("loop");
        a.ldr_idx(X5, X3, X1, 3);
        a.ldr_idx(X6, X2, X5, 3);
        a.add(X0, X0, X6);
        a.addi(X1, X1, 1);
        a.cmp(X1, X4);
        a.bcc(Cond::Lt, "loop");
        a.halt();
        let init = vec![(X1, 0), (X2, data), (X3, idx), (X4, n)];
        (a.assemble(), mem, init)
    }

    #[test]
    fn ooo_extracts_mlp_on_gather() {
        let (p, mut mem, init) = gather_setup(4096);
        let r = run_ooo(&OooConfig::default(), &p, &mut mem, &init, 10_000_000);
        // Independent iterations: should overlap misses and beat 0.3 IPC.
        assert!(r.ipc() > 0.3, "OoO IPC too low: {}", r.ipc());
        assert!(r.instructions > 4096 * 6);
    }

    #[test]
    fn dependence_chain_limits_ilp() {
        // Pointer chase: strictly serial loads. IPC must collapse toward
        // instructions/(hops * mem_latency).
        let n = 512u64;
        let data = 0x10_000u64;
        let mut mem = FlatMem::new(0, 0x100_000);
        // A stride permutation with poor locality.
        for i in 0..n {
            mem.write_u64(data + i * 8, (i + 263) % n);
        }
        let mut a = Asm::new("chase");
        a.label("loop");
        a.ldr_idx(X0, X2, X0, 3);
        a.subi(X1, X1, 1);
        a.cbnz(X1, "loop");
        a.halt();
        let p = a.assemble();
        let init = vec![(X0, 0), (X1, 2000u64), (X2, data)];
        let r = run_ooo(&OooConfig::default(), &p, &mut mem, &init, 10_000_000);
        assert!(
            r.ipc() < 0.5,
            "dependent loads cannot sustain high IPC: {}",
            r.ipc()
        );
    }

    #[test]
    fn bigger_window_helps_gather() {
        let (p, mut mem, init) = gather_setup(2048);
        let small = OooConfig {
            rob: 16,
            mshrs: 2,
            ..OooConfig::default()
        };
        let r_small = run_ooo(&small, &p, &mut mem.clone(), &init, 10_000_000);
        let r_big = run_ooo(&OooConfig::default(), &p, &mut mem, &init, 10_000_000);
        assert!(
            r_big.core_cycles < r_small.core_cycles,
            "big window {} should beat small {}",
            r_big.core_cycles,
            r_small.core_cycles
        );
    }

    #[test]
    fn clock_normalization() {
        let (p, mut mem, init) = gather_setup(256);
        let r = run_ooo(&OooConfig::default(), &p, &mut mem, &init, 1_000_000);
        assert_eq!(r.nmp_equivalent_cycles, (r.core_cycles as f64 / 2.0) as u64);
    }
}
