//! Layout of the reserved register-backing region in memory.
//!
//! Offloaded thread contexts are "shipped through the crossbar and written
//! to a reserved region of memory per processor" (§6). ViReC spills and
//! fills registers to this region through the dcache; each thread's context
//! occupies a small number of 64-byte lines (general-purpose registers plus
//! one line of system registers).

use virec_isa::Reg;

/// Bytes reserved per thread: 31 GPRs (4 lines, 8 regs each, rounded) plus
/// one line of system registers = 5 lines.
pub const BYTES_PER_THREAD: u64 = 5 * 64;

/// Describes where one core's register contexts live in memory.
#[derive(Clone, Copy, Debug)]
pub struct RegRegion {
    /// Base address of this core's reserved region (64-byte aligned).
    pub base: u64,
    /// Number of hardware threads with contexts in the region.
    pub nthreads: usize,
}

impl RegRegion {
    /// Creates a region at `base` for `nthreads` threads.
    ///
    /// # Panics
    /// Panics if `base` is not 64-byte aligned.
    pub fn new(base: u64, nthreads: usize) -> RegRegion {
        assert_eq!(base % 64, 0, "region base must be line-aligned");
        RegRegion { base, nthreads }
    }

    /// Total size of the region in bytes.
    pub fn size(&self) -> u64 {
        self.nthreads as u64 * BYTES_PER_THREAD
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.size()
    }

    /// Backing-store address of `reg` for thread `tid`.
    pub fn reg_addr(&self, tid: usize, reg: Reg) -> u64 {
        assert!(tid < self.nthreads);
        assert!(!reg.is_zero(), "xzr has no backing-store slot");
        self.base + tid as u64 * BYTES_PER_THREAD + reg.index() as u64 * 8
    }

    /// Backing-store address of thread `tid`'s system-register line
    /// (PC, flags and scheduling state, prefetched by the CSL ping-pong
    /// buffer in §5.2).
    pub fn sysreg_addr(&self, tid: usize) -> u64 {
        assert!(tid < self.nthreads);
        self.base + tid as u64 * BYTES_PER_THREAD + 4 * 64
    }

    /// Whether `addr` falls inside the reserved region. The dcache miss
    /// logic uses this check to suppress context-switch signals for
    /// register fills (§5.3).
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::reg::names::*;

    #[test]
    fn distinct_threads_distinct_lines() {
        let r = RegRegion::new(0x1_0000, 8);
        for t in 0..8 {
            for u in 0..8 {
                if t != u {
                    // Thread contexts must never share a cache line, or
                    // pinning would couple unrelated threads.
                    assert_ne!(r.reg_addr(t, X0) / 64, r.reg_addr(u, X0) / 64);
                }
            }
        }
    }

    #[test]
    fn reg_addresses_are_dense_and_ordered() {
        let r = RegRegion::new(0, 2);
        assert_eq!(r.reg_addr(0, X0), 0);
        assert_eq!(r.reg_addr(0, X1), 8);
        assert_eq!(r.reg_addr(0, X30), 240);
        assert_eq!(r.reg_addr(1, X0), BYTES_PER_THREAD);
    }

    #[test]
    fn sysregs_have_their_own_line() {
        let r = RegRegion::new(0, 1);
        let sys = r.sysreg_addr(0);
        assert_eq!(sys % 64, 0);
        assert!(sys / 64 > r.reg_addr(0, X30) / 64);
    }

    #[test]
    fn contains_boundaries() {
        let r = RegRegion::new(0x2000, 4);
        assert!(r.contains(0x2000));
        assert!(r.contains(r.end() - 1));
        assert!(!r.contains(r.end()));
        assert!(!r.contains(0x1FFF));
    }

    #[test]
    #[should_panic(expected = "xzr")]
    fn xzr_rejected() {
        let r = RegRegion::new(0, 1);
        let _ = r.reg_addr(0, XZR);
    }

    #[test]
    fn lines_per_thread_matches_paper() {
        // "each thread uses between 2 and 4 cache lines to store their
        // general and system registers" — our full layout is 5 lines, of
        // which a reduced-context workload touches 2–4.
        assert_eq!(BYTES_PER_THREAD / 64, 5);
    }
}
