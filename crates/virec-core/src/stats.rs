//! Per-core execution statistics.

use virec_mem::CacheStats;

/// Counters collected while a core runs. `PartialEq` is part of the
/// event-driven loop's contract: differential tests assert the dense and
/// wakeup-scheduled loops produce byte-identical counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions committed across all threads.
    pub instructions: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Context-switch requests suppressed by the CSL masks (§5.2).
    pub switches_masked: u64,
    /// Per-register tag-store lookups that hit (register present in RF).
    pub rf_hits: u64,
    /// Per-register tag-store lookups that missed (fill required).
    pub rf_misses: u64,
    /// Register fills satisfied by the dummy-value optimization
    /// (destination-only operands, §5.3).
    pub rf_dummy_fills: u64,
    /// Registers spilled to the backing store.
    pub rf_spills: u64,
    /// Cycles the front end stalled waiting for register fills.
    pub stall_reg_fill: u64,
    /// Cycles the mem stage stalled on dcache data (blocking waits).
    pub stall_mem: u64,
    /// Cycles spent with no runnable thread (all blocked on memory).
    pub stall_idle: u64,
    /// Cycles lost to fetch stalls (icache misses, post-switch redirect).
    pub stall_fetch: u64,
    /// Cycles the store queue was full and blocked the mem stage.
    pub stall_sq_full: u64,
    /// Cycles spent on software save/restore sequences (software engine).
    pub stall_ctx_software: u64,
    /// Branches that were mispredicted (redirect bubbles).
    pub branch_mispredicts: u64,
    /// Data cache statistics.
    pub dcache: CacheStats,
    /// Instruction cache statistics.
    pub icache: CacheStats,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Register-file hit rate over tag-store lookups (Figure 12 metric).
    pub fn rf_hit_rate(&self) -> f64 {
        let total = self.rf_hits + self.rf_misses;
        if total == 0 {
            // An engine with no register cache (banked) never misses.
            1.0
        } else {
            self.rf_hits as f64 / total as f64
        }
    }

    /// Renders a human-readable multi-line report (the CLI's output
    /// format).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            out.push_str(&format!("{k:<22}: {v}\n"));
        };
        line("cycles", self.cycles.to_string());
        line("instructions", self.instructions.to_string());
        line("IPC", format!("{:.4}", self.ipc()));
        line("context switches", self.context_switches.to_string());
        line("switches masked", self.switches_masked.to_string());
        line("run length", format!("{:.1}", self.run_length()));
        line("RF hit rate", format!("{:.2}%", self.rf_hit_rate() * 100.0));
        line("RF spills", self.rf_spills.to_string());
        line("RF dummy fills", self.rf_dummy_fills.to_string());
        line(
            "dcache hit rate",
            format!("{:.2}%", self.dcache.hit_rate() * 100.0),
        );
        line(
            "icache hit rate",
            format!("{:.2}%", self.icache.hit_rate() * 100.0),
        );
        line("stall: reg fill", self.stall_reg_fill.to_string());
        line("stall: mem block", self.stall_mem.to_string());
        line("stall: idle", self.stall_idle.to_string());
        line("stall: fetch", self.stall_fetch.to_string());
        line("stall: sq full", self.stall_sq_full.to_string());
        line("branch mispredicts", self.branch_mispredicts.to_string());
        out
    }

    /// Mean committed instructions between context switches.
    pub fn run_length(&self) -> f64 {
        if self.context_switches == 0 {
            self.instructions as f64
        } else {
            self.instructions as f64 / self.context_switches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_basic() {
        let s = CoreStats {
            cycles: 100,
            instructions: 40,
            ..Default::default()
        };
        assert!((s.ipc() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_safe() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
        assert_eq!(CoreStats::default().rf_hit_rate(), 1.0);
    }

    #[test]
    fn hit_rate() {
        let s = CoreStats {
            rf_hits: 90,
            rf_misses: 10,
            ..Default::default()
        };
        assert!((s.rf_hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn report_contains_key_lines() {
        let s = CoreStats {
            cycles: 10,
            instructions: 5,
            ..Default::default()
        };
        let r = s.report();
        assert!(r.contains("IPC"));
        assert!(r.contains("0.5000"));
        assert!(r.contains("RF hit rate"));
    }

    #[test]
    fn run_length() {
        let s = CoreStats {
            instructions: 100,
            context_switches: 4,
            ..Default::default()
        };
        assert!((s.run_length() - 25.0).abs() < 1e-12);
    }
}
