//! The near-memory processor core: a single-issue, in-order, 5-stage
//! pipeline (Fetch → Decode → Execute → Mem → Commit) with coarse-grain
//! multithreading, the context-switching logic (CSL) of §5.2, and a
//! pluggable [`ContextEngine`].
//!
//! ## Timing model
//!
//! * Fetch is pipelined: icache hits deliver one instruction per cycle;
//!   misses stall. Branches use static prediction (backward taken, forward
//!   not-taken; unconditional branches always follow their target).
//! * Decode performs the register lookup through the context engine. ViReC
//!   misses stall the front end until the BSI fills return (Figure 4 (A)→(B)).
//! * Execute resolves branches (mispredicts squash the fetched slot and
//!   redirect) and computes ALU results / effective addresses. `mul` and
//!   `udiv` occupy the stage for multiple cycles.
//! * Mem issues loads/stores through the LSQ port of the dcache. A **load
//!   miss to program data** raises the context-switch request (Figure 4
//!   (C)→(E)); the CSL masks of §5.2 may instead turn it into a blocking
//!   wait. Stores retire into a finite store queue that drains in the
//!   background.
//! * Commit pops the rollback queue, counts instructions and unblocks the
//!   "committed since last switch" CSL mask.

use crate::config::{CoreConfig, EngineKind};
use crate::engine::{
    AcquireOutcome, ContextEngine, EngineEnv, EngineFault, OracleSchedule, QuantumRecord,
    QuantumTrace,
};
use crate::engines::{BankedEngine, PrefetchEngine, SoftwareEngine, VirecEngine};
use crate::regions::RegRegion;
use crate::stats::CoreStats;
use crate::thread::{Thread, ThreadStatus};
use crate::trace::{TraceEvent, Tracer};
use std::collections::VecDeque;
use virec_isa::{AccessSize, DataMemory, Flags, FlatMem, Instr, Program, Reg};
use virec_mem::{AccessKind, AccessResult, Cache, Fabric, MshrId, MshrRetireError, PortId};

/// A fetched instruction waiting for decode.
#[derive(Clone, Copy, Debug)]
struct Fetched {
    instr: Instr,
    pc: u32,
    predicted_next: u32,
    avail_at: u64,
}

/// The decode-stage latch.
#[derive(Clone, Copy, Debug)]
struct DecodeSlot {
    instr: Instr,
    pc: u32,
    predicted_next: u32,
    /// `acquire` has been called at least once (engine holds in-flight
    /// state for this instruction).
    started: bool,
    /// `acquire` returned `Ready`.
    ready: bool,
}

/// The execute-stage latch.
#[derive(Clone, Copy, Debug)]
struct ExecSlot {
    instr: Instr,
    pc: u32,
    done_at: u64,
    /// ALU-class result to write back on exit.
    result: Option<(Reg, u64)>,
    /// Effective address for memory instructions.
    addr: u64,
    /// Value to store, for stores.
    store_val: u64,
}

#[derive(Clone, Copy, Debug)]
enum MemPhase {
    /// Needs to issue its dcache access (or is a non-memory instruction).
    Start,
    /// Dcache hit in flight.
    Wait { at: u64 },
    /// Blocking on an MSHR (masked context switch or register-region miss).
    WaitMshr { mshr: MshrId },
    /// Completed; commits at `at`.
    Done { at: u64 },
}

/// The mem-stage latch.
#[derive(Clone, Copy, Debug)]
struct MemSlot {
    instr: Instr,
    pc: u32,
    phase: MemPhase,
    addr: u64,
    store_val: u64,
    /// Functionally loaded value (written back at completion).
    load_val: u64,
}

#[derive(Clone, Copy, Debug)]
enum SqState {
    Issue,
    Wait { at: u64 },
    WaitMshr { mshr: MshrId },
}

#[derive(Clone, Copy, Debug)]
struct SqEntry {
    addr: u64,
    state: SqState,
}

#[derive(Clone, Copy, Debug)]
enum SysPurpose {
    /// Demand fetch of the incoming thread's sysregs (blocks fetch).
    DemandIn,
    /// Ping-pong buffer prefetch for a predicted-next thread.
    Prefetch(u8),
    /// Write-back of a suspended thread's sysregs.
    Writeback,
}

#[derive(Clone, Copy, Debug)]
struct SysOp {
    addr: u64,
    is_load: bool,
    purpose: SysPurpose,
}

#[derive(Clone, Copy, Debug)]
enum SysWait {
    At(u64),
    Mshr(MshrId),
}

/// A near-memory processor core.
pub struct Core {
    cfg: CoreConfig,
    program: Program,
    region: RegRegion,
    code_base: u64,
    icache: Cache,
    dcache: Cache,
    engine: Box<dyn ContextEngine>,
    threads: Vec<Thread>,

    running: Option<u8>,
    /// At least one thread has been activated (suppresses the first
    /// `on_switch` callback, which has no suspended predecessor).
    started: bool,
    /// Thread chosen to switch in, waiting for the engine to be ready.
    pending_in: Option<u8>,
    /// Last thread that ran (round-robin pointer).
    last_tid: u8,
    committed_since_switch: bool,

    fetch_pc: u32,
    fetch_stopped: bool,
    fetch_wait_mshr: Option<MshrId>,
    fetched: Option<Fetched>,
    decode: Option<DecodeSlot>,
    exec: Option<ExecSlot>,
    mem_slot: Option<MemSlot>,
    sq: VecDeque<SqEntry>,

    /// Sysreg ping-pong buffer state (§5.2). Only used by engines that keep
    /// sysregs in the backing store (ViReC and the prefetchers).
    use_sysbuf: bool,
    sys_ready: Vec<bool>,
    sys_queue: VecDeque<SysOp>,
    sys_wait: Vec<(SysWait, SysPurpose)>,
    sys_demand_outstanding: bool,

    /// Abandoned icache MSHRs (squashed fetches), retired when they return.
    orphan_ifetches: Vec<MshrId>,

    /// Per-quantum register-use recording for the prefetch oracle.
    recorder: Option<Vec<Vec<u32>>>,
    quantum_mask: Vec<u32>,

    /// Quantum tracer (static-analysis cross-checks): closed quanta plus
    /// the in-flight quantum's start PC and use/demand/written masks. Only
    /// the running thread accumulates, so scalars suffice.
    qtracer: Option<QuantumTrace>,
    q_start_pc: u32,
    q_used: u32,
    q_demand: u32,
    q_written: u32,

    /// PC of each thread's most recently committed instruction (failure
    /// diagnostics — pinpoints where a thread was when a run went wrong).
    last_commit_pc: Vec<Option<u32>>,

    /// First structural hazard observed (e.g. a corrupted MSHR id whose
    /// retire failed). A healthy machine never sets this; the runner polls
    /// it and converts the run into a detected failure instead of a panic.
    structural_fault: Option<String>,

    tracer: Option<Tracer>,
    stats: CoreStats,
}

/// Records the first structural hazard into `slot` (later ones are dropped:
/// the machine is already poisoned and the first cause is the useful one).
fn note_structural(slot: &mut Option<String>, e: MshrRetireError) {
    if slot.is_none() {
        *slot = Some(e.to_string());
    }
}

/// Deep copy for architectural checkpointing. The tracer callback is not
/// cloneable and is dropped from the copy; replayed windows therefore do not
/// re-emit trace events, which keeps recorded traces free of duplicates.
impl Clone for Core {
    fn clone(&self) -> Core {
        Core {
            cfg: self.cfg,
            program: self.program.clone(),
            region: self.region,
            code_base: self.code_base,
            icache: self.icache.clone(),
            dcache: self.dcache.clone(),
            engine: self.engine.clone_box(),
            threads: self.threads.clone(),
            running: self.running,
            started: self.started,
            pending_in: self.pending_in,
            last_tid: self.last_tid,
            committed_since_switch: self.committed_since_switch,
            fetch_pc: self.fetch_pc,
            fetch_stopped: self.fetch_stopped,
            fetch_wait_mshr: self.fetch_wait_mshr,
            fetched: self.fetched,
            decode: self.decode,
            exec: self.exec,
            mem_slot: self.mem_slot,
            sq: self.sq.clone(),
            use_sysbuf: self.use_sysbuf,
            sys_ready: self.sys_ready.clone(),
            sys_queue: self.sys_queue.clone(),
            sys_wait: self.sys_wait.clone(),
            sys_demand_outstanding: self.sys_demand_outstanding,
            orphan_ifetches: self.orphan_ifetches.clone(),
            recorder: self.recorder.clone(),
            quantum_mask: self.quantum_mask.clone(),
            qtracer: self.qtracer.clone(),
            q_start_pc: self.q_start_pc,
            q_used: self.q_used,
            q_demand: self.q_demand,
            q_written: self.q_written,
            last_commit_pc: self.last_commit_pc.clone(),
            structural_fault: self.structural_fault.clone(),
            tracer: None,
            stats: self.stats,
        }
    }

    /// Allocation-reusing deep copy: the checkpoint ring overwrites evicted
    /// snapshots in place, so the `clone_from` of every heap-backed field
    /// recycles its existing buffer instead of reallocating. The engine has
    /// no in-place path (it is a boxed trait object) and is re-boxed.
    fn clone_from(&mut self, src: &Core) {
        self.cfg = src.cfg;
        self.program.clone_from(&src.program);
        self.region = src.region;
        self.code_base = src.code_base;
        self.icache.clone_from(&src.icache);
        self.dcache.clone_from(&src.dcache);
        self.engine = src.engine.clone_box();
        self.threads.clone_from(&src.threads);
        self.running = src.running;
        self.started = src.started;
        self.pending_in = src.pending_in;
        self.last_tid = src.last_tid;
        self.committed_since_switch = src.committed_since_switch;
        self.fetch_pc = src.fetch_pc;
        self.fetch_stopped = src.fetch_stopped;
        self.fetch_wait_mshr = src.fetch_wait_mshr;
        self.fetched = src.fetched;
        self.decode = src.decode;
        self.exec = src.exec;
        self.mem_slot = src.mem_slot;
        self.sq.clone_from(&src.sq);
        self.use_sysbuf = src.use_sysbuf;
        self.sys_ready.clone_from(&src.sys_ready);
        self.sys_queue.clone_from(&src.sys_queue);
        self.sys_wait.clone_from(&src.sys_wait);
        self.sys_demand_outstanding = src.sys_demand_outstanding;
        self.orphan_ifetches.clone_from(&src.orphan_ifetches);
        self.recorder.clone_from(&src.recorder);
        self.quantum_mask.clone_from(&src.quantum_mask);
        self.qtracer.clone_from(&src.qtracer);
        self.q_start_pc = src.q_start_pc;
        self.q_used = src.q_used;
        self.q_demand = src.q_demand;
        self.q_written = src.q_written;
        self.last_commit_pc.clone_from(&src.last_commit_pc);
        self.structural_fault.clone_from(&src.structural_fault);
        self.tracer = None;
        self.stats = src.stats;
    }
}

impl Core {
    /// Builds a core. `ports.0`/`ports.1` are the fabric ports of the
    /// icache and dcache respectively; `region` is where this core's thread
    /// contexts were offloaded; `code_base` is the (timing-only) address of
    /// the program image.
    pub fn new(
        cfg: CoreConfig,
        program: Program,
        region: RegRegion,
        code_base: u64,
        ports: (PortId, PortId),
    ) -> Core {
        Self::with_oracle(
            cfg,
            program,
            region,
            code_base,
            ports,
            OracleSchedule::default(),
        )
    }

    /// Builds a core with an oracle schedule for exact-context prefetching.
    pub fn with_oracle(
        cfg: CoreConfig,
        program: Program,
        region: RegRegion,
        code_base: u64,
        ports: (PortId, PortId),
        oracle: OracleSchedule,
    ) -> Core {
        cfg.validate();
        assert_eq!(region.nthreads, cfg.nthreads, "region sized for nthreads");
        let engine: Box<dyn ContextEngine> = match cfg.engine {
            EngineKind::ViReC => Box::new(VirecEngine::new(&cfg)),
            EngineKind::Banked => Box::new(BankedEngine::new(cfg.nthreads)),
            EngineKind::Software => Box::new(SoftwareEngine::new(cfg.nthreads)),
            EngineKind::PrefetchFull => Box::new(PrefetchEngine::full(cfg.nthreads)),
            EngineKind::PrefetchExact => Box::new(PrefetchEngine::exact(cfg.nthreads, oracle)),
        };
        let use_sysbuf = matches!(
            cfg.engine,
            EngineKind::ViReC | EngineKind::PrefetchFull | EngineKind::PrefetchExact
        );
        Core {
            program,
            region,
            code_base,
            icache: Cache::new(cfg.icache, ports.0),
            dcache: Cache::new(cfg.dcache, ports.1),
            engine,
            threads: (0..cfg.nthreads).map(|_| Thread::new(0)).collect(),
            running: None,
            started: false,
            pending_in: Some(0),
            last_tid: 0,
            committed_since_switch: true,
            fetch_pc: 0,
            fetch_stopped: false,
            fetch_wait_mshr: None,
            fetched: None,
            decode: None,
            exec: None,
            mem_slot: None,
            sq: VecDeque::new(),
            use_sysbuf,
            sys_ready: vec![false; cfg.nthreads],
            sys_queue: VecDeque::new(),
            sys_wait: Vec::new(),
            sys_demand_outstanding: false,
            orphan_ifetches: Vec::new(),
            recorder: None,
            quantum_mask: vec![0; cfg.nthreads],
            qtracer: None,
            q_start_pc: 0,
            q_used: 0,
            q_demand: 0,
            q_written: 0,
            last_commit_pc: vec![None; cfg.nthreads],
            structural_fault: None,
            tracer: None,
            stats: CoreStats::default(),
            cfg,
        }
    }

    /// Installs an event tracer (see [`crate::trace`]). Pass the callback
    /// from [`crate::trace::VecTracer::tracer`] to record into a vector.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    #[inline]
    fn emit(&mut self, now: u64, ev: TraceEvent) {
        if let Some(t) = &mut self.tracer {
            t(now, ev);
        }
    }

    /// Enables per-quantum register-use recording (to build the oracle for
    /// exact-context prefetching).
    pub fn enable_quantum_recording(&mut self) {
        self.recorder = Some(vec![Vec::new(); self.cfg.nthreads]);
    }

    /// Enables per-quantum tracing of use/demand masks and engine live-bit
    /// samples, for cross-checking against static liveness (virec-verify).
    pub fn enable_quantum_trace(&mut self) {
        self.qtracer = Some(QuantumTrace::default());
    }

    /// Takes the recorded quantum trace (call after the run).
    pub fn take_quantum_trace(&mut self) -> QuantumTrace {
        self.qtracer.take().unwrap_or_default()
    }

    /// Takes the recorded oracle schedule (call after the run).
    pub fn take_oracle(&mut self) -> OracleSchedule {
        let mut sets = self.recorder.take().unwrap_or_default();
        // Close the final quantum of every thread.
        for (t, mask) in self.quantum_mask.iter().enumerate() {
            if *mask != 0 {
                if let Some(v) = sets.get_mut(t) {
                    v.push(*mask);
                }
            }
        }
        OracleSchedule { sets }
    }

    /// This core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// This core's register-backing region.
    pub fn region(&self) -> RegRegion {
        self.region
    }

    /// Execution statistics (dcache/icache stats are folded in by
    /// [`Core::finalize_stats`]).
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Scheduling state of thread `tid`.
    pub fn thread(&self, tid: usize) -> &Thread {
        &self.threads[tid]
    }

    /// Whether every launched thread has halted (threads that were never
    /// activated do not keep the core alive).
    pub fn done(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.status, ThreadStatus::Halted | ThreadStatus::Inactive))
    }

    /// Deactivates thread `tid` so the scheduler skips it until
    /// [`Core::activate_thread`]. Only valid before the thread has run
    /// (status `Ready`, typically right after construction).
    pub fn deactivate_thread(&mut self, tid: usize) {
        assert_eq!(
            self.threads[tid].status,
            ThreadStatus::Ready,
            "can only deactivate a not-yet-run thread"
        );
        self.threads[tid].status = ThreadStatus::Inactive;
    }

    /// Launches a previously inactive thread at `pc`. The caller must have
    /// offloaded its context to the reserved region beforehand.
    pub fn activate_thread(&mut self, tid: usize, pc: u32) {
        assert_eq!(
            self.threads[tid].status,
            ThreadStatus::Inactive,
            "thread {tid} is not inactive"
        );
        self.threads[tid].pc = pc;
        self.threads[tid].status = ThreadStatus::Ready;
    }

    /// Copies cache statistics into the core stats snapshot.
    pub fn finalize_stats(&mut self) {
        self.stats.dcache = *self.dcache.stats();
        self.stats.icache = *self.icache.stats();
    }

    /// Writes all live register state to the backing region so final
    /// architectural state can be inspected from memory.
    pub fn drain(&mut self, mem: &mut FlatMem) {
        self.engine.drain(self.region, mem);
    }

    /// PC of each thread's most recently committed instruction (`None` for
    /// threads that never committed).
    pub fn last_commit_pcs(&self) -> &[Option<u32>] {
        &self.last_commit_pc
    }

    /// First structural hazard observed by the pipeline (a failed MSHR
    /// retire from a corrupted id), or `None` for a healthy machine. The
    /// runner polls this every cycle and aborts the run with a typed error.
    pub fn structural_fault(&self) -> Option<&str> {
        self.structural_fault.as_deref()
    }

    /// Delivers a fault to the context engine (the fault-injection
    /// subsystem's entry point for engine-internal state). Returns a
    /// description of the corrupted site, or `None` if not applicable.
    pub fn inject_fault(&mut self, fault: EngineFault) -> Option<String> {
        self.engine.inject_fault(fault)
    }

    /// RAS: permanently retires the `nth` occupied engine way (see
    /// [`crate::engine::ContextEngine::retire_way`]); relocation spills go
    /// through the real BSI/fabric path.
    pub fn retire_value_way(
        &mut self,
        nth: u64,
        use_spare: bool,
        fabric: &mut Fabric,
        mem: &mut FlatMem,
    ) -> Option<crate::engine::WayRetire> {
        let mut env = Self::env(&mut self.stats, &mut self.dcache, fabric, mem, self.region);
        self.engine.retire_way(nth, use_spare, &mut env)
    }

    /// RAS: re-applies a way retirement by physical index after a
    /// checkpoint restore rewound engine state (idempotent).
    pub fn remask_way(
        &mut self,
        idx: usize,
        use_spare: bool,
        fabric: &mut Fabric,
        mem: &mut FlatMem,
    ) -> bool {
        let mut env = Self::env(&mut self.stats, &mut self.dcache, fabric, mem, self.region);
        self.engine.remask_way(idx, use_spare, &mut env)
    }

    /// Spare engine ways still available for RAS retirement.
    pub fn spare_ways_left(&self) -> usize {
        self.engine.spare_ways_left()
    }

    /// Multi-line snapshot of pipeline and engine state for livelock dumps:
    /// per-thread status and last-committed PC, latch occupancy, engine
    /// occupancy, and outstanding cache MSHRs.
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, t) in self.threads.iter().enumerate() {
            let _ = writeln!(
                s,
                "  thread {i}: {:?} pc={} last_commit={}",
                t.status,
                t.pc,
                match self.last_commit_pc[i] {
                    Some(pc) => pc.to_string(),
                    None => "-".to_string(),
                }
            );
        }
        let occ = |b: bool| if b { "busy" } else { "-" };
        let _ = writeln!(
            s,
            "  pipeline: running={:?} fetched={} decode={} exec={} mem={} sq={}",
            self.running,
            occ(self.fetched.is_some()),
            occ(self.decode.is_some()),
            occ(self.exec.is_some()),
            occ(self.mem_slot.is_some()),
            self.sq.len()
        );
        let _ = writeln!(s, "  engine: {}", self.engine.debug_state());
        let _ = writeln!(
            s,
            "  mshrs: dcache {} outstanding, icache {} outstanding",
            self.dcache.outstanding_mshrs(),
            self.icache.outstanding_mshrs()
        );
        s
    }

    /// Architectural value of `(tid, reg)` after [`Core::drain`].
    pub fn arch_reg(&self, tid: usize, reg: Reg, mem: &FlatMem) -> u64 {
        if reg.is_zero() {
            0
        } else {
            mem.read(self.region.reg_addr(tid, reg), AccessSize::B8)
        }
    }

    fn code_addr(&self, pc: u32) -> u64 {
        self.code_base + pc as u64 * 4
    }

    fn env<'a>(
        engine_stats: &'a mut CoreStats,
        dcache: &'a mut Cache,
        fabric: &'a mut Fabric,
        mem: &'a mut FlatMem,
        region: RegRegion,
    ) -> EngineEnv<'a> {
        EngineEnv {
            dcache,
            fabric,
            mem,
            region,
            stats: engine_stats,
        }
    }

    /// Advances the core by one cycle. The caller must tick the fabric once
    /// per cycle (before or after all cores, consistently).
    pub fn tick(&mut self, now: u64, fabric: &mut Fabric, mem: &mut FlatMem) {
        self.stats.cycles += 1;

        self.dcache.tick(now, fabric);
        self.icache.tick(now, fabric);
        self.poll_blocked_threads(now);
        self.poll_orphans(now);

        // Stall accounting (one category per cycle, most severe first).
        if self.running.is_none() {
            self.stats.stall_idle += 1;
        } else if matches!(
            self.mem_slot,
            Some(MemSlot {
                phase: MemPhase::WaitMshr { .. },
                ..
            })
        ) {
            self.stats.stall_mem += 1;
        } else if matches!(
            self.decode,
            Some(DecodeSlot {
                started: true,
                ready: false,
                ..
            })
        ) {
            self.stats.stall_reg_fill += 1;
        } else if self.fetched.is_none()
            && (self.fetch_wait_mshr.is_some() || self.sys_demand_outstanding)
        {
            self.stats.stall_fetch += 1;
        }

        // Backend first so younger stages see freed slots this cycle.
        self.stage_mem(now, fabric, mem);
        self.drain_sq(now, fabric);
        self.stage_exec(now, fabric, mem);
        self.stage_decode(now, fabric, mem);
        self.stage_fetch_to_decode(now);

        // Engine machinery (BSI / transfer queues) after the LSQ had its
        // chance at the dcache ports — the arbiter priority of §5.3.
        {
            let mut env = Self::env(&mut self.stats, &mut self.dcache, fabric, mem, self.region);
            self.engine.tick(now, &mut env);
        }
        self.tick_sysops(now, fabric);
        self.stage_fetch(now, fabric);
        self.schedule(now, fabric, mem);
    }

    /// Earliest future cycle at which [`Core::tick`] could do anything
    /// beyond the fixed per-cycle bookkeeping that [`Core::credit_skipped`]
    /// reproduces. Call after `tick(now)`. `None` means the core is fully
    /// quiescent until new work arrives (e.g. a thread is activated).
    ///
    /// The contract mirrors the tick body stage by stage: every state that
    /// retries something each cycle answers `now + 1`; every timer-driven
    /// state answers its recorded cycle; MSHR waits answer nothing because
    /// the caches' own next events cover fill completion (a filled MSHR
    /// keeps reporting `now + 1` until its waiter retires it).
    pub fn next_event(&self, now: u64, fabric: &Fabric) -> Option<u64> {
        // Fast path: every source below clamps to `now + 1`, so the moment
        // any retry-every-cycle state is live the answer is exactly
        // `now + 1` and the queue/MSHR scans can be bypassed. These are the
        // cheap O(1) tests; on productive cycles one of them almost always
        // fires, keeping the event query off the simulation's hot path.
        if matches!(
            self.mem_slot,
            Some(MemSlot {
                phase: MemPhase::Start,
                ..
            })
        ) || self.decode.as_ref().is_some_and(|d| !d.ready)
            || !self.sys_queue.is_empty()
            || matches!(
                self.sq.front(),
                Some(SqEntry {
                    state: SqState::Issue,
                    ..
                })
            )
            || (self.running.is_some()
                && self.fetched.is_none()
                && !self.fetch_stopped
                && !self.sys_demand_outstanding
                && self.fetch_wait_mshr.is_none())
            || (self.running.is_none()
                && (self.pending_in.is_some() || self.threads.iter().any(|t| t.runnable())))
            || (self.decode.is_none() && self.fetched.as_ref().is_some_and(|f| f.avail_at <= now))
        {
            return Some(now + 1);
        }

        let mut min: Option<u64> = None;
        let mut push = |t: u64| {
            let t = t.max(now + 1);
            min = Some(min.map_or(t, |m: u64| m.min(t)));
        };

        if let Some(t) = self.dcache.next_event(now, fabric) {
            push(t);
        }
        if let Some(t) = self.icache.next_event(now, fabric) {
            push(t);
        }
        if let Some(t) = self.engine.next_event(now) {
            push(t);
        }

        if let Some(slot) = &self.mem_slot {
            match slot.phase {
                // Issue retries every cycle until a port/MSHR frees up.
                MemPhase::Start => push(now + 1),
                MemPhase::Wait { at } | MemPhase::Done { at } => push(at),
                // The dcache's next event covers the fill.
                MemPhase::WaitMshr { .. } => {}
            }
        }
        if let Some(head) = self.sq.front() {
            match head.state {
                SqState::Issue => push(now + 1),
                SqState::Wait { at } => push(at),
                SqState::WaitMshr { .. } => {}
            }
        }
        if let Some(e) = &self.exec {
            // A finished execute slot (done_at <= now) is blocked on the mem
            // slot, whose events cover the unblock — they drain in the same
            // tick (backend-first stage order).
            if e.done_at > now {
                push(e.done_at);
            }
        }
        if let Some(d) = &self.decode {
            // Acquire is retried every cycle until Ready; a Ready slot is
            // blocked on execute/mem, whose events cover the unblock.
            if !d.ready {
                push(now + 1);
            }
        } else if let Some(f) = &self.fetched {
            push(f.avail_at);
        }
        if !self.sys_queue.is_empty() {
            push(now + 1);
        }
        for (w, _) in &self.sys_wait {
            if let SysWait::At(t) = w {
                push(*t);
            }
        }
        // Active fetch issues an icache access every cycle.
        if self.running.is_some()
            && self.fetched.is_none()
            && !self.fetch_stopped
            && !self.sys_demand_outstanding
            && self.fetch_wait_mshr.is_none()
        {
            push(now + 1);
        }
        // Scheduling polls `thread_ready` every cycle while a switch-in is
        // wanted or possible; when every thread is blocked, the wakeups come
        // from the dcache events above.
        if self.running.is_none()
            && (self.pending_in.is_some() || self.threads.iter().any(|t| t.runnable()))
        {
            push(now + 1);
        }
        min
    }

    /// Credits a span of skipped (provably no-op) cycles to the statistics
    /// exactly as the dense loop would have: the cycle counter advances and
    /// the per-cycle stall classification — evaluated on the frozen state,
    /// mirroring the if-chain at the top of [`Core::tick`] — accrues the
    /// whole span. Digests and stats stay byte-identical either way.
    pub fn credit_skipped(&mut self, span: u64) {
        self.stats.cycles += span;
        if self.running.is_none() {
            self.stats.stall_idle += span;
        } else if matches!(
            self.mem_slot,
            Some(MemSlot {
                phase: MemPhase::WaitMshr { .. },
                ..
            })
        ) {
            self.stats.stall_mem += span;
        } else if matches!(
            self.decode,
            Some(DecodeSlot {
                started: true,
                ready: false,
                ..
            })
        ) {
            self.stats.stall_reg_fill += span;
        } else if self.fetched.is_none()
            && (self.fetch_wait_mshr.is_some() || self.sys_demand_outstanding)
        {
            self.stats.stall_fetch += span;
        }
    }

    // ---- scheduling ----------------------------------------------------

    fn poll_blocked_threads(&mut self, now: u64) {
        let mut woke: Vec<u8> = Vec::new();
        for (i, t) in self.threads.iter_mut().enumerate() {
            if let ThreadStatus::Blocked(mshr) = t.status {
                if self.dcache.mshr_ready(mshr, now) {
                    if let Err(e) = self.dcache.mshr_retire(mshr) {
                        note_structural(&mut self.structural_fault, e);
                    }
                    t.status = ThreadStatus::Ready;
                    woke.push(i as u8);
                }
            }
        }
        for tid in woke {
            self.emit(now, TraceEvent::Wakeup { tid });
        }
    }

    fn poll_orphans(&mut self, now: u64) {
        let icache = &mut self.icache;
        let structural = &mut self.structural_fault;
        self.orphan_ifetches.retain(|&m| {
            if icache.mshr_ready(m, now) {
                if let Err(e) = icache.mshr_retire(m) {
                    note_structural(structural, e);
                }
                false
            } else {
                true
            }
        });
    }

    /// Picks and activates the next thread when the pipeline is idle.
    fn schedule(&mut self, now: u64, fabric: &mut Fabric, mem: &mut FlatMem) {
        if self.running.is_some() {
            return;
        }
        if self.pending_in.is_none() {
            // Round-robin scan from the last running thread.
            let n = self.cfg.nthreads;
            for i in 1..=n {
                let cand = ((self.last_tid as usize + i) % n) as u8;
                if self.threads[cand as usize].runnable() {
                    self.pending_in = Some(cand);
                    break;
                }
            }
        }
        let Some(tid) = self.pending_in else { return };
        if !self.threads[tid as usize].runnable() {
            // Chosen thread got blocked/halted in the meantime; rescan.
            self.pending_in = None;
            return;
        }
        let ready = {
            let mut env = Self::env(&mut self.stats, &mut self.dcache, fabric, mem, self.region);
            self.engine.thread_ready(now, tid, &mut env)
        };
        if !ready {
            return;
        }
        // Switch in.
        self.pending_in = None;
        let out = self.last_tid;
        self.running = Some(tid);
        self.last_tid = tid;
        self.fetch_pc = self.threads[tid as usize].pc;
        self.fetch_stopped = false;
        self.committed_since_switch = false;
        if self.started {
            let mut env = Self::env(&mut self.stats, &mut self.dcache, fabric, mem, self.region);
            self.engine.on_switch(now, out, tid, &mut env);
        }
        self.started = true;
        if self.qtracer.is_some() {
            self.q_start_pc = self.fetch_pc;
            self.q_used = 0;
            self.q_demand = 0;
            self.q_written = 0;
        }
        self.emit(
            now,
            TraceEvent::SwitchIn {
                tid,
                pc: self.fetch_pc,
            },
        );
        if self.use_sysbuf {
            if !self.sys_ready[tid as usize] {
                self.sys_queue.push_back(SysOp {
                    addr: self.region.sysreg_addr(tid as usize),
                    is_load: true,
                    purpose: SysPurpose::DemandIn,
                });
                self.sys_demand_outstanding = true;
            }
            // Warm the ping-pong buffer for the predicted next thread.
            if let Some(next) = self.predict_next_thread(tid) {
                if !self.sys_ready[next as usize] {
                    self.sys_queue.push_back(SysOp {
                        addr: self.region.sysreg_addr(next as usize),
                        is_load: true,
                        purpose: SysPurpose::Prefetch(next),
                    });
                }
            }
        }
    }

    fn predict_next_thread(&self, after: u8) -> Option<u8> {
        let n = self.cfg.nthreads;
        for i in 1..n {
            let cand = ((after as usize + i) % n) as u8;
            if self.threads[cand as usize].status != ThreadStatus::Halted {
                return Some(cand);
            }
        }
        None
    }

    /// Flushes the pipeline and suspends the running thread.
    /// `resume_pc` is where the thread will replay from; `blocked_on` is the
    /// MSHR of the triggering load miss (if any).
    fn context_switch_out(
        &mut self,
        now: u64,
        resume_pc: u32,
        blocked_on: Option<MshrId>,
        halted: bool,
        fabric: &mut Fabric,
        mem: &mut FlatMem,
    ) {
        let tid = self.running.take().expect("switching out with no thread");
        let t = &mut self.threads[tid as usize];
        t.pc = resume_pc;
        t.status = match (halted, blocked_on) {
            (true, _) => ThreadStatus::Halted,
            (false, Some(m)) => ThreadStatus::Blocked(m),
            (false, None) => ThreadStatus::Ready,
        };

        // Flush the pipeline; the engine compacts its rollback queue and
        // clears the C bits of in-flight registers (§5.1).
        self.fetched = None;
        self.decode = None;
        self.exec = None;
        self.mem_slot = None;
        if let Some(m) = self.fetch_wait_mshr.take() {
            self.orphan_ifetches.push(m);
        }
        self.engine.flush_all_inflight(tid);
        // Close the quantum-trace record, sampling engine live bits after
        // the §5.1 compaction but before halt reclamation.
        if let Some(tracer) = self.qtracer.as_mut() {
            let live = self.engine.live_bits(tid);
            let (resident, committed) = live.unwrap_or((0, 0));
            tracer.quanta.push(QuantumRecord {
                tid,
                start_pc: self.q_start_pc,
                resume_pc,
                used: self.q_used,
                demand: self.q_demand,
                resident,
                committed,
                has_live_bits: live.is_some(),
                halted,
            });
        }
        if halted {
            let mut env = Self::env(&mut self.stats, &mut self.dcache, fabric, mem, self.region);
            self.engine.on_thread_halt(tid, &mut env);
        }

        // Close the recording quantum.
        if let Some(rec) = &mut self.recorder {
            let mask = std::mem::take(&mut self.quantum_mask[tid as usize]);
            rec[tid as usize].push(mask);
        }

        if self.use_sysbuf {
            self.sys_ready[tid as usize] = false;
            self.sys_queue.push_back(SysOp {
                addr: self.region.sysreg_addr(tid as usize),
                is_load: false,
                purpose: SysPurpose::Writeback,
            });
        }

        if !halted {
            self.stats.context_switches += 1;
        }
        self.emit(
            now,
            TraceEvent::SwitchOut {
                tid,
                resume_pc,
                blocked: blocked_on.is_some(),
            },
        );
    }

    // ---- pipeline stages -------------------------------------------------

    fn stage_mem(&mut self, now: u64, fabric: &mut Fabric, mem: &mut FlatMem) {
        let Some(mut slot) = self.mem_slot.take() else {
            return;
        };
        let tid = self.running.expect("mem stage with no running thread");

        match slot.phase {
            MemPhase::Start => {
                // The issue attempt failed last cycle (port/MSHR); retry.
                self.mem_slot = Some(slot);
                self.mem_issue(now, fabric, mem);
                return;
            }
            MemPhase::Wait { at } => {
                if at <= now {
                    if let Instr::Ldr { dst, .. } = slot.instr {
                        self.engine.write(tid, dst, slot.load_val);
                    }
                    slot.phase = MemPhase::Done { at: now };
                }
                self.mem_slot = Some(slot);
            }
            MemPhase::WaitMshr { mshr } => {
                if self.dcache.mshr_ready(mshr, now) {
                    if let Err(e) = self.dcache.mshr_retire(mshr) {
                        note_structural(&mut self.structural_fault, e);
                    }
                    if let Instr::Ldr { dst, size, .. } = slot.instr {
                        slot.load_val = mem.read(slot.addr, size);
                        self.engine.write(tid, dst, slot.load_val);
                    }
                    slot.phase = MemPhase::Done { at: now };
                }
                self.mem_slot = Some(slot);
            }
            MemPhase::Done { .. } => {
                self.mem_slot = Some(slot);
            }
        }
        self.try_commit(now, fabric, mem);
    }

    /// Processes a mem-stage slot in [`MemPhase::Start`]: issues the dcache
    /// access for loads/stores (the CSL switch decision happens here) or
    /// completes non-memory instructions in a single cycle.
    fn mem_issue(&mut self, now: u64, fabric: &mut Fabric, mem: &mut FlatMem) {
        let Some(mut slot) = self.mem_slot.take() else {
            return;
        };
        debug_assert!(matches!(slot.phase, MemPhase::Start));

        match slot.instr {
            Instr::Ldr { size, .. } => {
                match self
                    .dcache
                    .access(now, slot.addr, AccessKind::DataLoad, fabric)
                {
                    AccessResult::Hit { ready_at } => {
                        slot.load_val = mem.read(slot.addr, size);
                        slot.phase = MemPhase::Wait { at: ready_at };
                        self.mem_slot = Some(slot);
                    }
                    AccessResult::Miss { mshr } => {
                        if self.region.contains(slot.addr) {
                            // Register-region miss: never a context switch
                            // (§5.3) — wait for the fill.
                            slot.phase = MemPhase::WaitMshr { mshr };
                            self.mem_slot = Some(slot);
                        } else if self.can_switch() {
                            self.context_switch_out(now, slot.pc, Some(mshr), false, fabric, mem);
                            return;
                        } else {
                            self.stats.switches_masked += 1;
                            let tid = self.running.expect("mem stage implies running");
                            self.emit(now, TraceEvent::SwitchMasked { tid });
                            slot.phase = MemPhase::WaitMshr { mshr };
                            self.mem_slot = Some(slot);
                        }
                    }
                    AccessResult::NoMshr | AccessResult::NoPort => {
                        self.mem_slot = Some(slot); // retry next cycle
                    }
                }
            }
            Instr::Str { size, .. } => {
                if self.sq.len() >= self.cfg.sq_entries {
                    self.stats.stall_sq_full += 1;
                    self.mem_slot = Some(slot);
                } else {
                    mem.write(slot.addr, size, slot.store_val);
                    self.sq.push_back(SqEntry {
                        addr: slot.addr,
                        state: SqState::Issue,
                    });
                    slot.phase = MemPhase::Done { at: now };
                    self.mem_slot = Some(slot);
                }
            }
            _ => {
                slot.phase = MemPhase::Done { at: now };
                self.mem_slot = Some(slot);
            }
        }
        self.try_commit(now, fabric, mem);
    }

    fn try_commit(&mut self, now: u64, fabric: &mut Fabric, mem: &mut FlatMem) {
        let Some(slot) = self.mem_slot else { return };
        let MemPhase::Done { at } = slot.phase else {
            return;
        };
        if at > now {
            return;
        }
        let tid = self.running.expect("commit with no running thread");
        self.mem_slot = None;
        self.engine.commit_instr(tid, &slot.instr);
        self.stats.instructions += 1;
        self.committed_since_switch = true;
        self.last_commit_pc[tid as usize] = Some(slot.pc);
        self.emit(
            now,
            TraceEvent::Commit {
                tid,
                pc: slot.pc,
                instr: slot.instr,
            },
        );
        if matches!(slot.instr, Instr::Halt) {
            self.context_switch_out(now, slot.pc, None, true, fabric, mem);
        }
    }

    /// The CSL masking conditions of §5.2.
    fn can_switch(&self) -> bool {
        // (1) At least one instruction committed since the last switch.
        if !self.committed_since_switch {
            return false;
        }
        // (2) Another runnable thread exists.
        let tid = self.running.expect("mask check while idle");
        let any_other = self
            .threads
            .iter()
            .enumerate()
            .any(|(i, t)| i != tid as usize && t.runnable());
        if !any_other {
            return false;
        }
        // (3) No outstanding BSI register transfer.
        if self.engine.bsi_busy() {
            return false;
        }
        // (4) The oldest in-flight instruction is the memory operation
        // itself (always true for this in-order pipeline when known).
        if self.engine.oldest_inflight_is_mem() == Some(false) {
            return false;
        }
        true
    }

    fn drain_sq(&mut self, now: u64, fabric: &mut Fabric) {
        let Some(head) = self.sq.front_mut() else {
            return;
        };
        match head.state {
            SqState::Issue => {
                match self
                    .dcache
                    .access(now, head.addr, AccessKind::DataStore, fabric)
                {
                    AccessResult::Hit { ready_at } => head.state = SqState::Wait { at: ready_at },
                    AccessResult::Miss { mshr } => head.state = SqState::WaitMshr { mshr },
                    AccessResult::NoMshr | AccessResult::NoPort => {}
                }
            }
            SqState::Wait { at } => {
                if at <= now {
                    self.sq.pop_front();
                }
            }
            SqState::WaitMshr { mshr } => {
                if self.dcache.mshr_ready(mshr, now) {
                    if let Err(e) = self.dcache.mshr_retire(mshr) {
                        note_structural(&mut self.structural_fault, e);
                    }
                    self.sq.pop_front();
                }
            }
        }
    }

    fn stage_exec(&mut self, now: u64, fabric: &mut Fabric, mem: &mut FlatMem) {
        let Some(slot) = self.exec else { return };
        if slot.done_at > now || self.mem_slot.is_some() {
            return;
        }
        let tid = self.running.expect("exec with no running thread");
        // Writeback of ALU-class results happens as the instruction leaves
        // execute (full forwarding to the next instruction's execute entry).
        if let Some((dst, val)) = slot.result {
            self.engine.write(tid, dst, val);
        }
        self.exec = None;
        self.mem_slot = Some(MemSlot {
            instr: slot.instr,
            pc: slot.pc,
            phase: MemPhase::Start,
            addr: slot.addr,
            store_val: slot.store_val,
            load_val: 0,
        });
        // Issue immediately (the LSQ access happens in the cycle the
        // instruction enters the mem stage).
        self.mem_issue(now, fabric, mem);
    }

    /// Whether `instr` must wait for an in-flight load's destination.
    fn load_hazard(&self, instr: &Instr) -> bool {
        let Some(MemSlot {
            instr: Instr::Ldr { dst, .. },
            phase,
            ..
        }) = &self.mem_slot
        else {
            return false;
        };
        if matches!(phase, MemPhase::Done { .. }) {
            return false; // value already written back
        }
        instr.regs().contains(*dst)
    }

    fn stage_decode(&mut self, now: u64, fabric: &mut Fabric, mem: &mut FlatMem) {
        let Some(mut slot) = self.decode else { return };
        let tid = self.running.expect("decode with no running thread");

        if !slot.ready {
            let outcome = {
                let mut env =
                    Self::env(&mut self.stats, &mut self.dcache, fabric, mem, self.region);
                self.engine.acquire(now, tid, &slot.instr, &mut env)
            };
            slot.started = true;
            slot.ready = outcome == AcquireOutcome::Ready;
            if slot.ready {
                if let Some(_rec) = &self.recorder {
                    let mut mask = 0u32;
                    for r in slot.instr.regs().iter() {
                        mask |= 1 << r.index();
                    }
                    self.quantum_mask[tid as usize] |= mask;
                }
                if self.qtracer.is_some() {
                    // Acquired instructions are on the true execution path
                    // (branches resolve at decode-exit), so the
                    // read-before-written accumulation below is exactly the
                    // quantum's demand set.
                    for r in slot.instr.regs().iter() {
                        self.q_used |= 1 << r.index();
                    }
                    let uses = virec_isa::dataflow::use_mask(&slot.instr);
                    let defs = virec_isa::dataflow::def_mask(&slot.instr);
                    self.q_demand |= uses & !self.q_written;
                    self.q_written |= defs;
                }
            }
            self.decode = Some(slot);
        }
        let Some(slot) = self.decode else { return };
        if !slot.ready || self.exec.is_some() || self.load_hazard(&slot.instr) {
            return;
        }
        // Issue to execute: read operands, compute, resolve branches.
        self.decode = None;
        self.issue_to_exec(now, tid, slot);
    }

    fn issue_to_exec(&mut self, now: u64, tid: u8, slot: DecodeSlot) {
        use virec_isa::instr::Operand2;
        use virec_isa::MemOffset;

        let read = |e: &dyn ContextEngine, r: Reg| -> u64 { e.read(tid, r) };
        let flags = self.threads[tid as usize].flags;
        let mut result: Option<(Reg, u64)> = None;
        let mut addr = 0u64;
        let mut store_val = 0u64;
        let mut latency = 1u32;
        let mut actual_next = slot.pc + 1;

        match slot.instr {
            Instr::Alu { op, dst, src, rhs } => {
                let b = match rhs {
                    Operand2::Reg(r) => read(&*self.engine, r),
                    Operand2::Imm(v) => v as u64,
                };
                result = Some((dst, op.apply(read(&*self.engine, src), b)));
                latency = op.latency();
            }
            Instr::Madd { dst, a, b, acc } => {
                let v = read(&*self.engine, a)
                    .wrapping_mul(read(&*self.engine, b))
                    .wrapping_add(read(&*self.engine, acc));
                result = Some((dst, v));
                latency = 3;
            }
            Instr::MovImm { dst, imm } => {
                result = Some((dst, imm as u64));
            }
            Instr::Cmp { src, rhs } => {
                let b = match rhs {
                    Operand2::Reg(r) => read(&*self.engine, r),
                    Operand2::Imm(v) => v as u64,
                };
                self.threads[tid as usize].flags = Flags::from_cmp(read(&*self.engine, src), b);
            }
            Instr::Csel { dst, a, b, cond } => {
                let v = if cond.eval(flags) {
                    read(&*self.engine, a)
                } else {
                    read(&*self.engine, b)
                };
                result = Some((dst, v));
            }
            Instr::Ldr { base, offset, .. } | Instr::Str { base, offset, .. } => {
                let b = read(&*self.engine, base);
                addr = match offset {
                    MemOffset::Imm(i) => b.wrapping_add(i as u64),
                    MemOffset::RegShifted { index, shift } => {
                        b.wrapping_add(read(&*self.engine, index).wrapping_shl(shift as u32))
                    }
                };
                if let Instr::Str { src, .. } = slot.instr {
                    store_val = read(&*self.engine, src);
                }
            }
            Instr::B { target } => actual_next = target,
            Instr::Bcc { cond, target } => {
                if cond.eval(flags) {
                    actual_next = target;
                }
            }
            Instr::Cbz { src, target } => {
                if read(&*self.engine, src) == 0 {
                    actual_next = target;
                }
            }
            Instr::Cbnz { src, target } => {
                if read(&*self.engine, src) != 0 {
                    actual_next = target;
                }
            }
            Instr::Nop | Instr::Halt => {}
        }

        if slot.instr.is_branch() && actual_next != slot.predicted_next {
            // Mispredict: squash the fetched slot and redirect.
            self.stats.branch_mispredicts += 1;
            self.fetched = None;
            if let Some(m) = self.fetch_wait_mshr.take() {
                self.orphan_ifetches.push(m);
            }
            self.fetch_pc = actual_next;
            self.fetch_stopped = false;
        }

        self.exec = Some(ExecSlot {
            instr: slot.instr,
            pc: slot.pc,
            done_at: now + latency as u64,
            result,
            addr,
            store_val,
        });
    }

    fn stage_fetch_to_decode(&mut self, now: u64) {
        if self.decode.is_some() {
            return;
        }
        let Some(f) = self.fetched else { return };
        if f.avail_at > now {
            return;
        }
        self.fetched = None;
        self.decode = Some(DecodeSlot {
            instr: f.instr,
            pc: f.pc,
            predicted_next: f.predicted_next,
            started: false,
            ready: false,
        });
    }

    fn stage_fetch(&mut self, now: u64, fabric: &mut Fabric) {
        if self.running.is_none()
            || self.fetched.is_some()
            || self.fetch_stopped
            || self.sys_demand_outstanding
        {
            return;
        }
        if let Some(m) = self.fetch_wait_mshr {
            if self.icache.mshr_ready(m, now) {
                if let Err(e) = self.icache.mshr_retire(m) {
                    note_structural(&mut self.structural_fault, e);
                }
                self.fetch_wait_mshr = None;
                self.deliver_fetch(now + 1);
            }
            return;
        }
        let addr = self.code_addr(self.fetch_pc);
        match self.icache.access(now, addr, AccessKind::IFetch, fabric) {
            AccessResult::Hit { .. } => {
                // Pipelined fetch: one instruction per cycle on hits.
                self.deliver_fetch(now + 1);
            }
            AccessResult::Miss { mshr } => {
                self.fetch_wait_mshr = Some(mshr);
            }
            AccessResult::NoMshr | AccessResult::NoPort => {}
        }
    }

    fn deliver_fetch(&mut self, avail_at: u64) {
        let pc = self.fetch_pc;
        let instr = self.program.fetch(pc);
        let predicted_next = match instr {
            Instr::B { target } => target,
            Instr::Bcc { target, .. } | Instr::Cbz { target, .. } | Instr::Cbnz { target, .. } => {
                if self.cfg.branch_pred && target <= pc {
                    target // backward: predict taken
                } else {
                    pc + 1 // forward: predict not-taken
                }
            }
            Instr::Halt => {
                self.fetch_stopped = true;
                pc
            }
            _ => pc + 1,
        };
        self.fetched = Some(Fetched {
            instr,
            pc,
            predicted_next,
            avail_at,
        });
        if !self.fetch_stopped {
            self.fetch_pc = predicted_next;
        }
    }

    fn tick_sysops(&mut self, now: u64, fabric: &mut Fabric) {
        if !self.use_sysbuf {
            return;
        }
        // Complete.
        let mut i = 0;
        while i < self.sys_wait.len() {
            let done = match self.sys_wait[i].0 {
                SysWait::At(t) => t <= now,
                SysWait::Mshr(m) => {
                    if self.dcache.mshr_ready(m, now) {
                        if let Err(e) = self.dcache.mshr_retire(m) {
                            note_structural(&mut self.structural_fault, e);
                        }
                        true
                    } else {
                        false
                    }
                }
            };
            if !done {
                i += 1;
                continue;
            }
            match self.sys_wait[i].1 {
                SysPurpose::DemandIn => self.sys_demand_outstanding = false,
                SysPurpose::Prefetch(t) => self.sys_ready[t as usize] = true,
                SysPurpose::Writeback => {}
            }
            self.sys_wait.swap_remove(i);
        }
        // Issue (lowest priority on the dcache ports).
        if let Some(op) = self.sys_queue.front().copied() {
            let kind = match (op.is_load, self.cfg.reg_line_pinning) {
                (true, true) => AccessKind::RegFill,
                (true, false) => AccessKind::DataLoad,
                (false, true) => AccessKind::RegSpill,
                (false, false) => AccessKind::DataStore,
            };
            match self.dcache.access(now, op.addr, kind, fabric) {
                AccessResult::Hit { ready_at } => {
                    self.sys_queue.pop_front();
                    self.sys_wait.push((SysWait::At(ready_at), op.purpose));
                }
                AccessResult::Miss { mshr } => {
                    self.sys_queue.pop_front();
                    self.sys_wait.push((SysWait::Mshr(mshr), op.purpose));
                }
                AccessResult::NoMshr | AccessResult::NoPort => {}
            }
        }
    }
}
