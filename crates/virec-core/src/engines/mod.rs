//! Context-engine implementations: ViReC and the baselines it is evaluated
//! against (banked, software switching, full/exact context prefetching).

mod banked;
mod prefetch;
mod software;
mod virec;

pub use banked::BankedEngine;
pub use prefetch::PrefetchEngine;
pub use software::SoftwareEngine;
pub use virec::{VirecEngine, ROLLBACK_DEPTH};

use virec_mem::{AccessKind, AccessResult, Cache, Fabric, MshrId};

/// A queue of timing-only line/word transfers through the dcache, shared by
/// the banked first-activation loads, software save/restore sequences, and
/// the prefetch engines' context movement.
#[derive(Clone)]
pub(crate) struct Xfer {
    queued: std::collections::VecDeque<(u64, bool)>,
    outstanding: Vec<XferWait>,
}

#[derive(Clone, Copy)]
pub(crate) enum XferWait {
    At(u64),
    Mshr(MshrId),
}

impl Xfer {
    pub(crate) fn new() -> Xfer {
        Xfer {
            queued: std::collections::VecDeque::new(),
            outstanding: Vec::new(),
        }
    }

    /// Queues a load of `addr` (timing only).
    pub(crate) fn enqueue_load(&mut self, addr: u64) {
        self.queued.push_back((addr, true));
    }

    /// Queues a store to `addr` (timing only).
    pub(crate) fn enqueue_store(&mut self, addr: u64) {
        self.queued.push_back((addr, false));
    }

    /// No transfers queued or in flight.
    pub(crate) fn idle(&self) -> bool {
        self.queued.is_empty() && self.outstanding.is_empty()
    }

    /// Earliest future cycle at which [`Xfer::tick`] could do anything.
    /// Call after `tick(now)`. Queued transfers retry issue every cycle;
    /// `At` waits complete at their recorded cycle; MSHR waits contribute
    /// nothing — the dcache's own `next_event` covers their completion.
    pub(crate) fn next_event(&self, now: u64) -> Option<u64> {
        if !self.queued.is_empty() {
            return Some(now + 1);
        }
        self.outstanding
            .iter()
            .filter_map(|w| match *w {
                XferWait::At(t) => Some(t.max(now + 1)),
                XferWait::Mshr(_) => None,
            })
            .min()
    }

    /// Issues queued transfers and completes outstanding ones.
    pub(crate) fn tick(&mut self, now: u64, dcache: &mut Cache, fabric: &mut Fabric) {
        let mut i = 0;
        while i < self.outstanding.len() {
            let done = match self.outstanding[i] {
                XferWait::At(t) => t <= now,
                XferWait::Mshr(id) => {
                    if dcache.mshr_ready(id, now) {
                        // Guarded by mshr_ready, so a retire failure means the
                        // id itself was corrupted; the transfer is complete
                        // either way (timing-only model), so degrade silently
                        // here and let the golden checker catch state damage.
                        let _ = dcache.mshr_retire(id);
                        true
                    } else {
                        false
                    }
                }
            };
            if done {
                self.outstanding.swap_remove(i);
            } else {
                i += 1;
            }
        }
        while let Some(&(addr, is_load)) = self.queued.front() {
            let kind = if is_load {
                AccessKind::DataLoad
            } else {
                AccessKind::DataStore
            };
            match dcache.access(now, addr, kind, fabric) {
                AccessResult::Hit { ready_at } => {
                    self.queued.pop_front();
                    self.outstanding.push(XferWait::At(ready_at));
                }
                AccessResult::Miss { mshr } => {
                    self.queued.pop_front();
                    self.outstanding.push(XferWait::Mshr(mshr));
                }
                AccessResult::NoMshr | AccessResult::NoPort => break,
            }
        }
    }
}
