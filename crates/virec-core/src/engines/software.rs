//! Software context switching (Figure 3(a)).
//!
//! Only the current thread's context is held in the (single) register file;
//! every context switch saves all 31 registers to memory and restores the
//! incoming thread's 31 registers with ordinary loads and stores. The
//! save/restore delay "can exceed memory latency" (§3) — this engine is the
//! low-area, low-performance end of the design space.

use super::Xfer;
use crate::engine::{AcquireOutcome, ContextEngine, EngineEnv};
use crate::regions::RegRegion;
use virec_isa::{AccessSize, DataMemory, FlatMem, Instr, Reg};

/// Software save/restore context management.
#[derive(Clone)]
pub struct SoftwareEngine {
    /// Architectural values per thread (functionally always current; the
    /// xfer queue models when the memory traffic happens).
    ctxs: Vec<[u64; 32]>,
    /// Thread contexts that have been fetched from the offload image.
    loaded: Vec<bool>,
    xfer: Xfer,
    /// Thread whose restore sequence is in progress.
    restoring: Option<u8>,
}

impl SoftwareEngine {
    /// Creates the engine for `nthreads` threads.
    pub fn new(nthreads: usize) -> SoftwareEngine {
        SoftwareEngine {
            ctxs: vec![[0; 32]; nthreads],
            loaded: vec![false; nthreads],
            xfer: Xfer::new(),
            restoring: None,
        }
    }

    fn start_restore(&mut self, tid: u8, env: &mut EngineEnv<'_>) {
        let t = tid as usize;
        if !self.loaded[t] {
            for r in Reg::allocatable() {
                self.ctxs[t][r.index()] = env.mem.read(env.region.reg_addr(t, r), AccessSize::B8);
            }
            self.loaded[t] = true;
        }
        for r in Reg::allocatable() {
            self.xfer.enqueue_load(env.region.reg_addr(t, r));
        }
        self.restoring = Some(tid);
    }
}

impl ContextEngine for SoftwareEngine {
    fn acquire(
        &mut self,
        _now: u64,
        _tid: u8,
        instr: &Instr,
        env: &mut EngineEnv<'_>,
    ) -> AcquireOutcome {
        env.stats.rf_hits += instr.regs().len() as u64;
        AcquireOutcome::Ready
    }

    fn read(&self, tid: u8, reg: Reg) -> u64 {
        if reg.is_zero() {
            0
        } else {
            self.ctxs[tid as usize][reg.index()]
        }
    }

    fn write(&mut self, tid: u8, reg: Reg, value: u64) {
        if !reg.is_zero() {
            self.ctxs[tid as usize][reg.index()] = value;
        }
    }

    fn commit_instr(&mut self, _tid: u8, _instr: &Instr) {}

    fn abort_youngest(&mut self, _tid: u8, _instr: &Instr) {}

    fn flush_all_inflight(&mut self, _tid: u8) {}

    fn on_switch(&mut self, _now: u64, out_tid: u8, in_tid: u8, env: &mut EngineEnv<'_>) {
        // Save the outgoing context with ordinary stores...
        let t = out_tid as usize;
        if self.loaded[t] {
            for r in Reg::allocatable() {
                let addr = env.region.reg_addr(t, r);
                env.mem.write(addr, AccessSize::B8, self.ctxs[t][r.index()]);
                self.xfer.enqueue_store(addr);
            }
        }
        // ...then restore the incoming one with ordinary loads.
        self.start_restore(in_tid, env);
    }

    fn thread_ready(&mut self, _now: u64, tid: u8, env: &mut EngineEnv<'_>) -> bool {
        match self.restoring {
            Some(t) if t == tid => self.xfer.idle(),
            Some(_) => false,
            None => {
                if !self.loaded[tid as usize] {
                    self.start_restore(tid, env);
                    return false;
                }
                true
            }
        }
    }

    fn tick(&mut self, now: u64, env: &mut EngineEnv<'_>) {
        let was_busy = !self.xfer.idle();
        self.xfer.tick(now, env.dcache, env.fabric);
        if was_busy {
            env.stats.stall_ctx_software += 1;
        }
        if self.xfer.idle() {
            if let Some(t) = self.restoring.take() {
                // Restore finished; keep it recorded as the resident thread.
                self.restoring = None;
                let _ = t;
            }
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // Every tick while the xfer is busy bumps `stall_ctx_software`, so
        // no cycle may be skipped until it drains — even MSHR waits.
        if self.xfer.idle() {
            None
        } else {
            Some(now + 1)
        }
    }

    fn drain(&mut self, region: RegRegion, mem: &mut FlatMem) {
        for (t, ctx) in self.ctxs.iter().enumerate() {
            if !self.loaded[t] {
                continue;
            }
            for r in Reg::allocatable() {
                mem.write(region.reg_addr(t, r), AccessSize::B8, ctx[r.index()]);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ContextEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CoreStats;
    use virec_isa::reg::names::*;
    use virec_mem::{Cache, CacheConfig, Fabric, FabricConfig};

    struct Rig {
        dc: Cache,
        fab: Fabric,
        mem: FlatMem,
        region: RegRegion,
        stats: CoreStats,
    }

    impl Rig {
        fn new() -> Rig {
            Rig {
                dc: Cache::new(CacheConfig::nmp_dcache(), 0),
                fab: Fabric::new(FabricConfig::default()),
                mem: FlatMem::new(0, 0x10_000),
                region: RegRegion::new(0x8000, 4),
                stats: CoreStats::default(),
            }
        }
        fn env(&mut self) -> EngineEnv<'_> {
            EngineEnv {
                dcache: &mut self.dc,
                fabric: &mut self.fab,
                mem: &mut self.mem,
                region: self.region,
                stats: &mut self.stats,
            }
        }
        fn drive_until_ready(&mut self, e: &mut SoftwareEngine, tid: u8) -> u64 {
            let mut now = 0;
            loop {
                let ready = {
                    let mut env = self.env();
                    e.thread_ready(now, tid, &mut env)
                };
                if ready {
                    return now;
                }
                self.fab.tick(now);
                self.dc.tick(now, &mut self.fab);
                let mut env = self.env();
                e.tick(now, &mut env);
                now += 1;
                assert!(now < 100_000);
            }
        }
    }

    #[test]
    fn restore_takes_many_cycles() {
        let mut rig = Rig::new();
        rig.mem.write_u64(rig.region.reg_addr(0, X7), 99);
        let mut e = SoftwareEngine::new(4);
        let t = rig.drive_until_ready(&mut e, 0);
        // 31 loads through one read port: at least 31 cycles.
        assert!(t >= 31, "restore finished suspiciously fast ({t} cycles)");
        assert_eq!(e.read(0, X7), 99);
    }

    #[test]
    fn switch_saves_and_restores() {
        let mut rig = Rig::new();
        let mut e = SoftwareEngine::new(2);
        rig.drive_until_ready(&mut e, 0);
        e.write(0, X3, 1234);
        {
            let mut env = rig.env();
            e.on_switch(100, 0, 1, &mut env);
        }
        // Functional save already visible.
        assert_eq!(rig.mem.read_u64(rig.region.reg_addr(0, X3)), 1234);
        rig.drive_until_ready(&mut e, 1);
        assert!(rig.stats.stall_ctx_software > 0);
    }

    #[test]
    fn other_threads_not_ready_during_restore() {
        let mut rig = Rig::new();
        let mut e = SoftwareEngine::new(2);
        let mut env = rig.env();
        assert!(!e.thread_ready(0, 0, &mut env));
        assert!(!e.thread_ready(0, 1, &mut env), "restore of 0 blocks 1");
    }
}
