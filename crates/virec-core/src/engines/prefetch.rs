//! Double-buffer register-file prefetching (§6.1's alternative approach,
//! after LTRF-style designs).
//!
//! Two context banks are used as a double buffer: while one thread executes
//! out of its bank, the other bank saves the previous thread's registers and
//! prefetches the next thread's. Two strategies are modelled:
//!
//! * **full** — prefetch the thread's complete (used) register context;
//! * **exact** — prefetch exactly the register set the thread will use in
//!   its next scheduling quantum, assuming an oracle prediction (recorded
//!   from a previous run). Registers the oracle missed are demand-filled, so
//!   the engine stays architecturally correct even when the recorded
//!   schedule diverges.
//!
//! Either way, all used registers are stored and re-loaded on every quantum —
//! the structural disadvantage versus ViReC's caching that the paper's
//! Figure 9 quantifies.

use super::Xfer;
use crate::engine::{AcquireOutcome, ContextEngine, EngineEnv, OracleSchedule};
use crate::regions::RegRegion;
use virec_isa::{AccessSize, DataMemory, FlatMem, Instr, Reg};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BankState {
    Empty,
    Filling,
    Ready,
    Saving,
}

#[derive(Clone)]
struct Bank {
    owner: Option<u8>,
    state: BankState,
    /// Registers present in the bank (bit per architectural register).
    present: u32,
    xfer: Xfer,
}

impl Bank {
    fn new() -> Bank {
        Bank {
            owner: None,
            state: BankState::Empty,
            present: 0,
            xfer: Xfer::new(),
        }
    }
}

fn mask_of(regs: impl Iterator<Item = Reg>) -> u32 {
    regs.fold(0, |m, r| m | 1 << r.index())
}

const FULL_MASK: u32 = (1 << 31) - 1; // x0..x30

/// The double-buffer prefetching engine.
#[derive(Clone)]
pub struct PrefetchEngine {
    exact: bool,
    oracle: OracleSchedule,
    /// Architectural values (functionally always current).
    ctxs: Vec<[u64; 32]>,
    loaded: Vec<bool>,
    /// Union of registers each thread has ever used (fallback context set).
    used_ever: Vec<u32>,
    /// Scheduling quantum counter per thread (indexes the oracle).
    quantum: Vec<usize>,
    halted: Vec<bool>,
    banks: [Bank; 2],
    /// Most recently switched-in thread (round-robin prediction base).
    last_in: u8,
    /// Thread the CSL is currently waiting to schedule (takes priority over
    /// the round-robin prediction for the next free bank, so a mispredicted
    /// prefetch cannot starve the scheduler).
    wanted: Option<u8>,
    nthreads: usize,
}

impl PrefetchEngine {
    /// Creates a full-context prefetcher.
    pub fn full(nthreads: usize) -> PrefetchEngine {
        Self::build(nthreads, false, OracleSchedule::default())
    }

    /// Creates an exact-context prefetcher driven by a recorded oracle.
    pub fn exact(nthreads: usize, oracle: OracleSchedule) -> PrefetchEngine {
        Self::build(nthreads, true, oracle)
    }

    fn build(nthreads: usize, exact: bool, oracle: OracleSchedule) -> PrefetchEngine {
        PrefetchEngine {
            exact,
            oracle,
            ctxs: vec![[0; 32]; nthreads],
            loaded: vec![false; nthreads],
            used_ever: vec![0; nthreads],
            quantum: vec![0; nthreads],
            halted: vec![false; nthreads],
            banks: [Bank::new(), Bank::new()],
            last_in: 0,
            wanted: None,
            nthreads,
        }
    }

    fn bank_of(&self, tid: u8) -> Option<usize> {
        self.banks.iter().position(|b| b.owner == Some(tid))
    }

    /// The register set to prefetch for `tid`'s next quantum. The full
    /// variant moves the complete architectural context every quantum (the
    /// expensive behaviour §6.1 measures); the exact variant moves only the
    /// oracle-predicted set, falling back to the thread's used set when the
    /// recorded schedule runs out.
    fn prefetch_mask(&self, tid: u8) -> u32 {
        let t = tid as usize;
        if self.exact {
            if let Some(m) = self.oracle.mask(t, self.quantum[t]) {
                return m;
            }
            if self.used_ever[t] != 0 {
                return self.used_ever[t];
            }
        }
        FULL_MASK
    }

    fn start_fill(&mut self, bank: usize, tid: u8, env: &mut EngineEnv<'_>) {
        let t = tid as usize;
        if !self.loaded[t] {
            for r in Reg::allocatable() {
                self.ctxs[t][r.index()] = env.mem.read(env.region.reg_addr(t, r), AccessSize::B8);
            }
            self.loaded[t] = true;
        }
        let mask = self.prefetch_mask(tid);
        let b = &mut self.banks[bank];
        b.owner = Some(tid);
        b.state = BankState::Filling;
        b.present = mask;
        for r in Reg::allocatable() {
            if mask & (1 << r.index()) != 0 {
                b.xfer.enqueue_load(env.region.reg_addr(t, r));
            }
        }
    }

    fn start_save(&mut self, bank: usize, env: &mut EngineEnv<'_>) {
        if self.banks[bank].state != BankState::Ready {
            return; // already saving, or nothing to save
        }
        let tid = self.banks[bank].owner.expect("saving ownerless bank") as usize;
        let present = self.banks[bank].present;
        for r in Reg::allocatable() {
            if present & (1 << r.index()) != 0 {
                let addr = env.region.reg_addr(tid, r);
                env.mem
                    .write(addr, AccessSize::B8, self.ctxs[tid][r.index()]);
                self.banks[bank].xfer.enqueue_store(addr);
            }
        }
        self.banks[bank].state = BankState::Saving;
    }

    /// Next thread after `self.last_in` (round-robin) that has no bank and
    /// has not halted — the CSL's prediction for who runs after next.
    fn predict_next(&self) -> Option<u8> {
        for i in 1..=self.nthreads {
            let cand = ((self.last_in as usize + i) % self.nthreads) as u8;
            if !self.halted[cand as usize] && self.bank_of(cand).is_none() {
                return Some(cand);
            }
        }
        None
    }
}

impl ContextEngine for PrefetchEngine {
    fn acquire(
        &mut self,
        _now: u64,
        tid: u8,
        instr: &Instr,
        env: &mut EngineEnv<'_>,
    ) -> AcquireOutcome {
        let bank = self.bank_of(tid).expect("running thread must own a bank");
        debug_assert_eq!(self.banks[bank].state, BankState::Ready);

        let srcs = mask_of(instr.srcs().iter());
        let dsts = mask_of(instr.dsts().iter());
        self.used_ever[tid as usize] |= srcs | dsts;

        let missing_srcs = srcs & !self.banks[bank].present;
        if missing_srcs != 0 {
            // Oracle mispredicted: demand-fill the missing sources.
            env.stats.rf_misses += (missing_srcs.count_ones()) as u64;
            env.stats.rf_hits +=
                (srcs & self.banks[bank].present).count_ones() as u64 + dsts.count_ones() as u64;
            for r in Reg::allocatable() {
                if missing_srcs & (1 << r.index()) != 0 {
                    self.banks[bank]
                        .xfer
                        .enqueue_load(env.region.reg_addr(tid as usize, r));
                }
            }
            self.banks[bank].present |= missing_srcs;
            return AcquireOutcome::Pending;
        }
        if !self.banks[bank].xfer.idle() {
            // Demand fills from a previous attempt still in flight.
            return AcquireOutcome::Pending;
        }
        env.stats.rf_hits += (srcs | dsts).count_ones() as u64;
        // Destinations materialize in the bank (dummy allocation).
        self.banks[bank].present |= dsts;
        AcquireOutcome::Ready
    }

    fn read(&self, tid: u8, reg: Reg) -> u64 {
        if reg.is_zero() {
            0
        } else {
            self.ctxs[tid as usize][reg.index()]
        }
    }

    fn write(&mut self, tid: u8, reg: Reg, value: u64) {
        if !reg.is_zero() {
            self.ctxs[tid as usize][reg.index()] = value;
            self.used_ever[tid as usize] |= 1 << reg.index();
            if let Some(b) = self.bank_of(tid) {
                self.banks[b].present |= 1 << reg.index();
            }
        }
    }

    fn commit_instr(&mut self, _tid: u8, _instr: &Instr) {}

    fn abort_youngest(&mut self, _tid: u8, _instr: &Instr) {}

    fn flush_all_inflight(&mut self, _tid: u8) {}

    fn on_switch(&mut self, _now: u64, out_tid: u8, in_tid: u8, env: &mut EngineEnv<'_>) {
        self.quantum[out_tid as usize] += 1;
        self.last_in = in_tid;
        if let Some(b) = self.bank_of(out_tid) {
            // All used registers are stored back every quantum (§6.1).
            self.start_save(b, env);
        }
    }

    fn on_thread_halt(&mut self, tid: u8, env: &mut EngineEnv<'_>) {
        self.halted[tid as usize] = true;
        if let Some(b) = self.bank_of(tid) {
            self.start_save(b, env);
        }
    }

    fn thread_ready(&mut self, _now: u64, tid: u8, env: &mut EngineEnv<'_>) -> bool {
        match self.bank_of(tid) {
            Some(b) => {
                if self.banks[b].state == BankState::Ready && self.banks[b].xfer.idle() {
                    if self.wanted == Some(tid) {
                        self.wanted = None;
                    }
                    true
                } else {
                    false
                }
            }
            None => {
                self.wanted = Some(tid);
                if let Some(b) = self.banks.iter().position(|b| b.state == BankState::Empty) {
                    self.start_fill(b, tid, env);
                } else if let Some(b) = self
                    .banks
                    .iter()
                    .position(|b| b.state == BankState::Ready && b.owner != Some(self.last_in))
                {
                    // Both banks busy with other threads: reclaim the one
                    // that is not running.
                    self.start_save(b, env);
                }
                false
            }
        }
    }

    fn tick(&mut self, now: u64, env: &mut EngineEnv<'_>) {
        for i in 0..2 {
            self.banks[i].xfer.tick(now, env.dcache, env.fabric);
            if self.banks[i].xfer.idle() {
                match self.banks[i].state {
                    BankState::Filling => self.banks[i].state = BankState::Ready,
                    BankState::Saving => {
                        self.banks[i].owner = None;
                        self.banks[i].present = 0;
                        self.banks[i].state = BankState::Empty;
                    }
                    _ => {}
                }
            }
        }
        // Keep the double buffer warm: an empty bank prefetches the thread
        // the scheduler is waiting on, or else the predicted next thread.
        if let Some(b) = self.banks.iter().position(|b| b.state == BankState::Empty) {
            let target = self
                .wanted
                .filter(|&t| self.bank_of(t).is_none() && !self.halted[t as usize])
                .or_else(|| self.predict_next());
            if let Some(tid) = target {
                self.start_fill(b, tid, env);
            }
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // State promotions (Filling→Ready, Saving→Empty) happen in the same
        // tick that drains a bank's xfer, so after a tick those states imply
        // a busy xfer — the xfers' next events cover them. An Empty bank
        // starts a prefetch on any tick where a fill target exists, and the
        // target expression mirrors the one in `tick`.
        let mut min: Option<u64> = None;
        for b in &self.banks {
            if let Some(t) = b.xfer.next_event(now) {
                min = Some(min.map_or(t, |m: u64| m.min(t)));
            }
        }
        if self.banks.iter().any(|b| b.state == BankState::Empty) {
            let target = self
                .wanted
                .filter(|&t| self.bank_of(t).is_none() && !self.halted[t as usize])
                .or_else(|| self.predict_next());
            if target.is_some() {
                return Some(now + 1);
            }
        }
        min
    }

    fn drain(&mut self, region: RegRegion, mem: &mut FlatMem) {
        for (t, ctx) in self.ctxs.iter().enumerate() {
            if !self.loaded[t] {
                continue;
            }
            for r in Reg::allocatable() {
                mem.write(region.reg_addr(t, r), AccessSize::B8, ctx[r.index()]);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ContextEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CoreStats;
    use virec_isa::instr::{AluOp, Operand2};
    use virec_isa::reg::names::*;
    use virec_mem::{Cache, CacheConfig, Fabric, FabricConfig};

    struct Rig {
        dc: Cache,
        fab: Fabric,
        mem: FlatMem,
        region: RegRegion,
        stats: CoreStats,
    }

    impl Rig {
        fn new() -> Rig {
            Rig {
                dc: Cache::new(CacheConfig::nmp_dcache(), 0),
                fab: Fabric::new(FabricConfig::default()),
                mem: FlatMem::new(0, 0x10_000),
                region: RegRegion::new(0x8000, 8),
                stats: CoreStats::default(),
            }
        }
        fn env(&mut self) -> EngineEnv<'_> {
            EngineEnv {
                dcache: &mut self.dc,
                fabric: &mut self.fab,
                mem: &mut self.mem,
                region: self.region,
                stats: &mut self.stats,
            }
        }
        fn drive_until_ready(&mut self, e: &mut PrefetchEngine, tid: u8, from: u64) -> u64 {
            let mut now = from;
            loop {
                let ready = {
                    let mut env = self.env();
                    e.thread_ready(now, tid, &mut env)
                };
                if ready {
                    return now;
                }
                self.fab.tick(now);
                self.dc.tick(now, &mut self.fab);
                let mut env = self.env();
                e.tick(now, &mut env);
                now += 1;
                assert!(now < from + 100_000);
            }
        }
    }

    #[test]
    fn initial_fill_then_run() {
        let mut rig = Rig::new();
        rig.mem.write_u64(rig.region.reg_addr(0, X2), 5);
        let mut e = PrefetchEngine::full(4);
        let t = rig.drive_until_ready(&mut e, 0, 0);
        assert!(t > 10);
        assert_eq!(e.read(0, X2), 5);
    }

    #[test]
    fn double_buffer_prefetches_next_thread() {
        let mut rig = Rig::new();
        let mut e = PrefetchEngine::full(4);
        let t = rig.drive_until_ready(&mut e, 0, 0);
        // Run ticks: the second bank should start prefetching thread 1.
        for now in t..t + 2000 {
            rig.fab.tick(now);
            rig.dc.tick(now, &mut rig.fab);
            let mut env = rig.env();
            e.tick(now, &mut env);
        }
        assert_eq!(e.bank_of(1), Some(1), "bank 1 must hold thread 1");
        assert_eq!(e.banks[1].state, BankState::Ready);
    }

    #[test]
    fn exact_prefetch_demand_fills_on_oracle_miss() {
        let mut rig = Rig::new();
        rig.mem.write_u64(rig.region.reg_addr(0, X4), 77);
        // Oracle claims thread 0's first quantum only uses x1.
        let oracle = OracleSchedule {
            sets: vec![vec![1 << 1]],
        };
        let mut e = PrefetchEngine::exact(4, oracle);
        let t = rig.drive_until_ready(&mut e, 0, 0);
        // Instruction reads x4 (not prefetched).
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: X5,
            src: X4,
            rhs: Operand2::Imm(0),
        };
        let mut now = t;
        loop {
            let out = {
                let mut env = rig.env();
                e.acquire(now, 0, &i, &mut env)
            };
            if out == AcquireOutcome::Ready {
                break;
            }
            rig.fab.tick(now);
            rig.dc.tick(now, &mut rig.fab);
            let mut env = rig.env();
            e.tick(now, &mut env);
            now += 1;
            assert!(now < t + 10_000);
        }
        assert!(now > t, "demand fill must cost cycles");
        assert!(rig.stats.rf_misses >= 1);
        assert_eq!(e.read(0, X4), 77);
    }

    #[test]
    fn save_writes_values_back() {
        let mut rig = Rig::new();
        let mut e = PrefetchEngine::full(2);
        rig.drive_until_ready(&mut e, 0, 0);
        e.write(0, X9, 4242);
        {
            let mut env = rig.env();
            e.on_switch(100, 0, 1, &mut env);
        }
        assert_eq!(rig.mem.read_u64(rig.region.reg_addr(0, X9)), 4242);
    }

    #[test]
    fn halted_threads_not_prefetched() {
        let mut rig = Rig::new();
        let mut e = PrefetchEngine::full(2);
        rig.drive_until_ready(&mut e, 0, 0);
        {
            let mut env = rig.env();
            e.on_thread_halt(1, &mut env);
        }
        assert_eq!(e.predict_next(), None, "only halted candidates remain");
    }
}
