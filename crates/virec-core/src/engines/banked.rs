//! The banked-register-file baseline (Figure 3(b)).
//!
//! One full 32-register bank per hardware thread, statically provisioned.
//! Register accesses never miss; the only memory traffic is the initial
//! context fetch when a thread is first scheduled (the offload mechanism of
//! §6 ships contexts through the crossbar into the reserved region, and the
//! core loads them into the bank).

use super::Xfer;
use crate::engine::{AcquireOutcome, ContextEngine, EngineEnv, EngineFault};
use crate::regions::{RegRegion, BYTES_PER_THREAD};
use crate::stats::CoreStats;
use virec_isa::{AccessSize, DataMemory, FlatMem, Instr, Reg};

#[derive(Clone, Copy)]
enum LoadState {
    NotLoaded,
    Loading,
    Ready,
}

/// Statically banked context storage.
#[derive(Clone)]
pub struct BankedEngine {
    banks: Vec<[u64; 32]>,
    state: Vec<LoadState>,
    xfer: Xfer,
    /// Thread whose initial context is currently being loaded.
    loading_tid: Option<u8>,
}

impl BankedEngine {
    /// Creates banks for `nthreads` threads.
    pub fn new(nthreads: usize) -> BankedEngine {
        BankedEngine {
            banks: vec![[0; 32]; nthreads],
            state: (0..nthreads).map(|_| LoadState::NotLoaded).collect(),
            xfer: Xfer::new(),
            loading_tid: None,
        }
    }

    fn count_access(stats: &mut CoreStats, instr: &Instr) {
        // Banked RFs never miss; count lookups as hits so RF hit-rate
        // comparisons are meaningful.
        stats.rf_hits += instr.regs().len() as u64;
    }
}

impl ContextEngine for BankedEngine {
    fn acquire(
        &mut self,
        _now: u64,
        tid: u8,
        instr: &Instr,
        env: &mut EngineEnv<'_>,
    ) -> AcquireOutcome {
        debug_assert!(
            matches!(self.state[tid as usize], LoadState::Ready),
            "scheduling gate must load the bank first"
        );
        Self::count_access(env.stats, instr);
        AcquireOutcome::Ready
    }

    fn read(&self, tid: u8, reg: Reg) -> u64 {
        if reg.is_zero() {
            0
        } else {
            self.banks[tid as usize][reg.index()]
        }
    }

    fn write(&mut self, tid: u8, reg: Reg, value: u64) {
        if !reg.is_zero() {
            self.banks[tid as usize][reg.index()] = value;
        }
    }

    fn commit_instr(&mut self, _tid: u8, _instr: &Instr) {}

    fn abort_youngest(&mut self, _tid: u8, _instr: &Instr) {}

    fn flush_all_inflight(&mut self, _tid: u8) {}

    fn on_switch(&mut self, _now: u64, _out: u8, _in: u8, _env: &mut EngineEnv<'_>) {}

    fn thread_ready(&mut self, _now: u64, tid: u8, env: &mut EngineEnv<'_>) -> bool {
        let t = tid as usize;
        match self.state[t] {
            LoadState::Ready => true,
            LoadState::Loading => false,
            LoadState::NotLoaded => {
                // Only one initial context load at a time (shared port).
                if self.loading_tid.is_some() {
                    return false;
                }
                // Functional copy from the offloaded context image.
                for r in Reg::allocatable() {
                    self.banks[t][r.index()] =
                        env.mem.read(env.region.reg_addr(t, r), AccessSize::B8);
                }
                // Timing: fetch the thread's context lines.
                let base = env.region.reg_addr(t, virec_isa::reg::names::X0);
                for line in 0..BYTES_PER_THREAD / 64 {
                    self.xfer.enqueue_load(base + line * 64);
                }
                self.state[t] = LoadState::Loading;
                self.loading_tid = Some(tid);
                false
            }
        }
    }

    fn tick(&mut self, now: u64, env: &mut EngineEnv<'_>) {
        self.xfer.tick(now, env.dcache, env.fabric);
        if let Some(tid) = self.loading_tid {
            if self.xfer.idle() {
                self.state[tid as usize] = LoadState::Ready;
                self.loading_tid = None;
            }
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // Ready-promotion happens in the same tick that drains the xfer, so
        // after a tick `loading_tid` is only set while the xfer is busy.
        self.xfer.next_event(now)
    }

    fn inject_fault(&mut self, fault: EngineFault) -> Option<String> {
        // Banked storage has no tag store or rollback queue; only register
        // cells can be hit.
        let EngineFault::RegValue { nth, bit } = fault else {
            return None;
        };
        let loaded: Vec<usize> = (0..self.banks.len())
            .filter(|&t| !matches!(self.state[t], LoadState::NotLoaded))
            .collect();
        if loaded.is_empty() {
            return None;
        }
        let cells = loaded.len() * virec_isa::reg::NUM_ALLOCATABLE;
        let cell = nth as usize % cells;
        let t = loaded[cell / virec_isa::reg::NUM_ALLOCATABLE];
        let r = cell % virec_isa::reg::NUM_ALLOCATABLE;
        self.banks[t][r] ^= 1 << (bit % 64);
        Some(format!("bank[t{t}] x{r} value bit {}", bit % 64))
    }

    fn occupancy(&self) -> (usize, usize) {
        let loaded = (0..self.banks.len())
            .filter(|&t| !matches!(self.state[t], LoadState::NotLoaded))
            .count();
        (
            loaded * virec_isa::reg::NUM_ALLOCATABLE,
            self.banks.len() * virec_isa::reg::NUM_ALLOCATABLE,
        )
    }

    fn drain(&mut self, region: RegRegion, mem: &mut FlatMem) {
        for (t, bank) in self.banks.iter().enumerate() {
            if matches!(self.state[t], LoadState::NotLoaded) {
                continue; // never ran; region still holds the initial image
            }
            for r in Reg::allocatable() {
                mem.write(region.reg_addr(t, r), AccessSize::B8, bank[r.index()]);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ContextEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::reg::names::*;
    use virec_mem::{Cache, CacheConfig, Fabric, FabricConfig};

    fn rig() -> (Cache, Fabric, FlatMem, RegRegion, CoreStats) {
        (
            Cache::new(CacheConfig::nmp_dcache(), 0),
            Fabric::new(FabricConfig::default()),
            FlatMem::new(0, 0x10_000),
            RegRegion::new(0x8000, 4),
            CoreStats::default(),
        )
    }

    #[test]
    fn initial_load_then_ready() {
        let (mut dc, mut fab, mut mem, region, mut stats) = rig();
        mem.write_u64(region.reg_addr(1, X5), 42);
        let mut e = BankedEngine::new(4);
        let mut now = 0;
        loop {
            let ready = {
                let mut env = EngineEnv {
                    dcache: &mut dc,
                    fabric: &mut fab,
                    mem: &mut mem,
                    region,
                    stats: &mut stats,
                };
                e.thread_ready(now, 1, &mut env)
            };
            if ready {
                break;
            }
            fab.tick(now);
            dc.tick(now, &mut fab);
            let mut env = EngineEnv {
                dcache: &mut dc,
                fabric: &mut fab,
                mem: &mut mem,
                region,
                stats: &mut stats,
            };
            e.tick(now, &mut env);
            now += 1;
            assert!(now < 10_000);
        }
        assert!(now > 5, "initial context fetch must take time");
        assert_eq!(e.read(1, X5), 42);
    }

    #[test]
    fn one_load_at_a_time() {
        let (mut dc, mut fab, mut mem, region, mut stats) = rig();
        let mut e = BankedEngine::new(4);
        let mut env = EngineEnv {
            dcache: &mut dc,
            fabric: &mut fab,
            mem: &mut mem,
            region,
            stats: &mut stats,
        };
        assert!(!e.thread_ready(0, 0, &mut env));
        assert!(
            !e.thread_ready(0, 1, &mut env),
            "second thread must wait for the first load"
        );
        assert!(matches!(e.state[1], LoadState::NotLoaded));
    }

    #[test]
    fn reads_writes_isolated_per_thread() {
        let mut e = BankedEngine::new(2);
        e.write(0, X3, 7);
        e.write(1, X3, 9);
        assert_eq!(e.read(0, X3), 7);
        assert_eq!(e.read(1, X3), 9);
        assert_eq!(e.read(0, XZR), 0);
        e.write(0, XZR, 1);
        assert_eq!(e.read(0, XZR), 0);
    }

    #[test]
    fn drain_skips_unloaded() {
        let (mut dc, mut fab, mut mem, region, mut stats) = rig();
        mem.write_u64(region.reg_addr(0, X1), 55);
        let mut e = BankedEngine::new(2);
        // Never loaded: drain must not clobber the initial image with zeros.
        e.drain(region, &mut mem);
        assert_eq!(mem.read_u64(region.reg_addr(0, X1)), 55);
        let _ = (&mut dc, &mut fab, &mut stats);
    }
}
