//! The ViReC context engine: VRMU (tag store + rollback queue) plus BSI.
//!
//! Register *values* live in the tag-store entries (the physical RF) while
//! resident, and in the backing region of functional memory while spilled.
//! Every fill reads memory and every dirty eviction writes it, so the
//! differential tests against the golden interpreter exercise the entire
//! §5 machinery.

use crate::bsi::Bsi;
use crate::config::CoreConfig;
use crate::engine::{AcquireOutcome, ContextEngine, EngineEnv, EngineFault, WayRetire};
use crate::regions::RegRegion;
use crate::vrmu::{AllocOutcome, RollbackEntry, RollbackQueue, TagStore};
use virec_isa::{AccessSize, DataMemory, FlatMem, Instr, Reg, RegList};

/// Depth of the rollback queue: the maximum number of in-flight
/// instructions in the backend (decode + execute + mem stages, plus one
/// being committed).
pub const ROLLBACK_DEPTH: usize = 4;

/// State of a multi-cycle acquisition.
#[derive(Clone)]
struct PendingAcquire {
    tid: u8,
    /// Registers still waiting for a free/evictable physical entry.
    unallocated: Vec<Reg>,
    /// All registers the instruction needs (for the final residency check).
    needed: RegList,
    /// Destination-only registers (dummy-fill candidates).
    dst_only: RegList,
}

/// The ViReC engine (§5).
#[derive(Clone)]
pub struct VirecEngine {
    tags: TagStore,
    rollback: RollbackQueue,
    bsi: Bsi,
    dummy_opt: bool,
    /// Registers to evict per eviction event (future-work group evictions).
    group_evict: usize,
    /// Prefetch the incoming thread's last context on switches
    /// (future-work prefetch + caching hybrid).
    switch_prefetch: bool,
    /// Resident register set of each thread at its last suspension.
    last_ctx: Vec<Vec<virec_isa::Reg>>,
    pending: Option<PendingAcquire>,
}

impl VirecEngine {
    /// Builds the engine from a core configuration.
    pub fn new(cfg: &CoreConfig) -> VirecEngine {
        assert!(cfg.group_evict >= 1, "group_evict must be at least 1");
        VirecEngine {
            tags: TagStore::with_spares(cfg.phys_regs, cfg.spare_ways, cfg.policy),
            rollback: RollbackQueue::new(ROLLBACK_DEPTH),
            bsi: Bsi::new(cfg.nonblocking_bsi, cfg.reg_line_pinning),
            dummy_opt: cfg.dummy_fill_opt,
            group_evict: cfg.group_evict,
            switch_prefetch: cfg.switch_prefetch,
            last_ctx: vec![Vec::new(); cfg.nthreads],
            pending: None,
        }
    }

    /// Immutable view of the tag store (for tests and diagnostics).
    pub fn tags(&self) -> &TagStore {
        &self.tags
    }

    fn dst_only_regs(instr: &Instr) -> RegList {
        let srcs = instr.srcs();
        instr.dsts().iter().filter(|d| !srcs.contains(*d)).collect()
    }

    /// Evicts `victim` data: functional writeback if dirty, and an unpin /
    /// writeback transaction through the BSI.
    fn spill_victim(
        &mut self,
        victim_tid: u8,
        victim_reg: Reg,
        victim_value: u64,
        victim_dirty: bool,
        env: &mut EngineEnv<'_>,
    ) {
        let addr = env.region.reg_addr(victim_tid as usize, victim_reg);
        if victim_dirty {
            env.mem.write(addr, AccessSize::B8, victim_value);
        }
        // The spill transaction also decrements the line's pin counter;
        // clean evictions still need the unpin bookkeeping.
        self.bsi.enqueue_spill(addr);
        env.stats.rf_spills += 1;
    }

    /// Allocates and queues a speculative prefetch fill for `(tid, reg)`.
    /// Unlike demand fills, this never performs group evictions and never
    /// blocks the CSL.
    fn try_allocate_prefetch(
        &mut self,
        tid: u8,
        reg: virec_isa::Reg,
        env: &mut EngineEnv<'_>,
    ) -> bool {
        let outcome = self.tags.allocate(tid, reg);
        let idx = match outcome {
            AllocOutcome::NoVictim => return false,
            AllocOutcome::Free { idx } => idx,
            AllocOutcome::Evicted {
                idx,
                victim_tid,
                victim_reg,
                victim_value,
                victim_dirty,
            } => {
                self.spill_victim(victim_tid, victim_reg, victim_value, victim_dirty, env);
                idx
            }
        };
        let addr = env.region.reg_addr(tid as usize, reg);
        self.tags.entry_mut(idx).fill_pending = true;
        self.bsi.enqueue_prefetch_fill(tid, reg, addr);
        true
    }

    /// Tries to allocate a physical register for `(tid, reg)`; on success
    /// also queues the fill (real or dummy).
    fn try_allocate(&mut self, tid: u8, reg: Reg, dummy: bool, env: &mut EngineEnv<'_>) -> bool {
        let outcome = self.tags.allocate(tid, reg);
        let idx = match outcome {
            AllocOutcome::NoVictim => return false,
            AllocOutcome::Free { idx } => idx,
            AllocOutcome::Evicted {
                idx,
                victim_tid,
                victim_reg,
                victim_value,
                victim_dirty,
            } => {
                self.spill_victim(victim_tid, victim_reg, victim_value, victim_dirty, env);
                // Future-work extension: group evictions free additional
                // entries in the same event, amortizing the spill burst.
                for _ in 1..self.group_evict {
                    let Some((vt, vr, vv, vd)) = self.tags.evict_one() else {
                        break;
                    };
                    self.spill_victim(vt, vr, vv, vd, env);
                }
                idx
            }
        };
        let addr = env.region.reg_addr(tid as usize, reg);
        if dummy {
            // Usable immediately; transaction is metadata bookkeeping only.
            let e = self.tags.entry_mut(idx);
            e.value = 0;
            e.fill_pending = false;
            env.stats.rf_dummy_fills += 1;
            self.bsi.enqueue_fill(tid, reg, addr, true);
        } else {
            self.tags.entry_mut(idx).fill_pending = true;
            self.bsi.enqueue_fill(tid, reg, addr, false);
        }
        true
    }

    /// Masks physical way `idx`, making room for its occupant by evicting
    /// another entry (a real spill through the BSI) when the store is full.
    /// Returns `Some(spared)` like [`TagStore::mask_way`], or `None` when
    /// the mask is impossible (floor violation, or every relocation target
    /// is locked).
    fn mask_making_room(
        &mut self,
        idx: usize,
        use_spare: bool,
        env: &mut EngineEnv<'_>,
    ) -> Option<bool> {
        if let Some(spared) = self.tags.mask_way(idx, use_spare) {
            return Some(spared);
        }
        // The occupant had nowhere to go (or the floor blocked the shrink).
        // Free a slot with a genuine eviction and retry once; if the store
        // still refuses, the retirement genuinely cannot proceed.
        let (vt, vr, vv, vd) = self.tags.evict_one()?;
        self.spill_victim(vt, vr, vv, vd, env);
        self.tags.mask_way(idx, use_spare)
    }
}

impl ContextEngine for VirecEngine {
    fn acquire(
        &mut self,
        _now: u64,
        tid: u8,
        instr: &Instr,
        env: &mut EngineEnv<'_>,
    ) -> AcquireOutcome {
        if self.pending.is_none() {
            // First attempt: classify hits and misses, count stats, lock
            // resident registers, allocate missing ones.
            let needed = instr.regs();
            let dst_only = if self.dummy_opt {
                Self::dst_only_regs(instr)
            } else {
                RegList::new()
            };
            let mut unallocated = Vec::new();
            for r in needed.iter() {
                if let Some(idx) = self.tags.lookup(tid, r) {
                    env.stats.rf_hits += 1;
                    self.tags.lock(idx);
                } else {
                    env.stats.rf_misses += 1;
                    let dummy = dst_only.contains(r);
                    if self.try_allocate(tid, r, dummy, env) {
                        let idx = self.tags.lookup(tid, r).expect("just allocated");
                        self.tags.lock(idx);
                    } else {
                        unallocated.push(r);
                    }
                }
            }
            self.rollback.push(RollbackEntry {
                regs: needed,
                is_mem: instr.is_mem(),
            });
            self.pending = Some(PendingAcquire {
                tid,
                unallocated,
                needed,
                dst_only,
            });
        }

        // Progress check: allocate leftovers, then wait for fills.
        let mut p = self.pending.take().expect("pending set above");
        debug_assert_eq!(p.tid, tid, "interleaved acquires are impossible");
        let dst_only = p.dst_only;
        p.unallocated.retain(|&r| {
            let dummy = dst_only.contains(r);
            if self.try_allocate(tid, r, dummy, env) {
                let idx = self.tags.lookup(tid, r).expect("just allocated");
                self.tags.lock(idx);
                false
            } else {
                true
            }
        });

        let all_resident = p.unallocated.is_empty()
            && p.needed.iter().all(|r| {
                self.tags
                    .lookup(tid, r)
                    .is_some_and(|idx| !self.tags.entry(idx).fill_pending)
            });

        if all_resident {
            for r in p.needed.iter() {
                let idx = self.tags.lookup(tid, r).expect("resident");
                self.tags.touch(idx);
            }
            self.pending = None;
            AcquireOutcome::Ready
        } else {
            self.pending = Some(p);
            AcquireOutcome::Pending
        }
    }

    fn read(&self, tid: u8, reg: Reg) -> u64 {
        if reg.is_zero() {
            return 0;
        }
        let idx = self
            .tags
            .lookup(tid, reg)
            .expect("reading a spilled register");
        let e = self.tags.entry(idx);
        assert!(!e.fill_pending, "reading a register whose fill is pending");
        e.value
    }

    fn write(&mut self, tid: u8, reg: Reg, value: u64) {
        if reg.is_zero() {
            return;
        }
        let idx = self
            .tags
            .lookup(tid, reg)
            .expect("writing a spilled register");
        let e = self.tags.entry_mut(idx);
        e.value = value;
        e.dirty = true;
    }

    fn commit_instr(&mut self, tid: u8, instr: &Instr) {
        let entry = self
            .rollback
            .pop_commit()
            .expect("commit with empty rollback queue");
        debug_assert_eq!(entry.regs, instr.regs());
        for r in entry.regs.iter() {
            if let Some(idx) = self.tags.lookup(tid, r) {
                self.tags.unlock(idx);
            }
        }
    }

    fn abort_youngest(&mut self, tid: u8, _instr: &Instr) {
        // Squashed while (or after) acquiring: drop the pending state and
        // release the locks of the youngest rollback entry.
        self.pending = None;
        if let Some(entry) = self.rollback.pop_youngest() {
            for r in entry.regs.iter() {
                if let Some(idx) = self.tags.lookup(tid, r) {
                    self.tags.unlock(idx);
                }
            }
        }
    }

    fn flush_all_inflight(&mut self, tid: u8) {
        self.pending = None;
        // Unlock per instruction, then clear the commit bits of the union
        // (the 1-hot compaction of §5.1).
        let mut union: Vec<Reg> = Vec::new();
        while let Some(entry) = self.rollback.pop_commit() {
            for r in entry.regs.iter() {
                if let Some(idx) = self.tags.lookup(tid, r) {
                    self.tags.unlock(idx);
                }
                if !union.contains(&r) {
                    union.push(r);
                }
            }
        }
        for r in union {
            self.tags.clear_commit(tid, r);
        }
    }

    fn on_switch(&mut self, _now: u64, out_tid: u8, in_tid: u8, env: &mut EngineEnv<'_>) {
        self.last_ctx[out_tid as usize] = self.tags.resident_regs(out_tid);
        self.tags.on_context_switch(out_tid, in_tid);
        if self.switch_prefetch {
            // Prefetch + caching hybrid (paper future work): warm the
            // incoming thread's last-held registers during the pipeline
            // refill window. Bounded, and abandoned if the RF has no free
            // victims.
            const MAX_PREFETCH: usize = 4;
            let want: Vec<virec_isa::Reg> = self.last_ctx[in_tid as usize]
                .iter()
                .copied()
                .filter(|&r| self.tags.lookup(in_tid, r).is_none())
                .take(MAX_PREFETCH)
                .collect();
            for r in want {
                if !self.try_allocate_prefetch(in_tid, r, env) {
                    break;
                }
            }
        }
    }

    fn thread_ready(&mut self, _now: u64, _tid: u8, _env: &mut EngineEnv<'_>) -> bool {
        true
    }

    fn tick(&mut self, now: u64, env: &mut EngineEnv<'_>) {
        self.bsi
            .tick(now, env.dcache, env.fabric, &mut self.tags, env.mem);
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // Tick only advances the BSI; pending acquires progress via the
        // decode stage, which the core's own next-event logic covers.
        self.bsi.next_event(now)
    }

    fn bsi_busy(&self) -> bool {
        // §5.2: the BSI masks context switches during an *ongoing fill
        // request* (to simplify fill logic / protect registers being
        // retrieved). Posted spills and dummy-fill bookkeeping transactions
        // retrieve nothing and must not turn switches into blocking waits.
        self.bsi.fills_pending()
    }

    fn oldest_inflight_is_mem(&self) -> Option<bool> {
        self.rollback.oldest_is_mem()
    }

    fn inject_fault(&mut self, fault: EngineFault) -> Option<String> {
        match fault {
            EngineFault::RegValue { nth, bit } => self.tags.corrupt_value(nth as usize, bit),
            EngineFault::RollbackSlot { nth, bit } => self.rollback.corrupt_slot(nth as usize, bit),
            EngineFault::StuckFill { nth } => self.tags.corrupt_stuck_fill(nth as usize),
        }
    }

    fn retire_way(
        &mut self,
        nth: u64,
        use_spare: bool,
        env: &mut EngineEnv<'_>,
    ) -> Option<WayRetire> {
        // Same nth-occupied addressing the fault injector uses, so the RAS
        // layer retires exactly the way the campaign corrupted.
        let occ = self.tags.valid_count().max(1);
        let idx = self.tags.resolve_nth_way((nth % occ as u64) as usize)?;
        let spared = self.mask_making_room(idx, use_spare, env)?;
        Some(WayRetire {
            idx,
            spared,
            desc: format!("vrmu way {idx} retired (spared={spared})"),
        })
    }

    fn remask_way(&mut self, idx: usize, use_spare: bool, env: &mut EngineEnv<'_>) -> bool {
        self.mask_making_room(idx, use_spare, env).is_some()
    }

    fn spare_ways_left(&self) -> usize {
        self.tags.spare_ways_left()
    }

    fn live_bits(&self, tid: u8) -> Option<(u32, u32)> {
        let mut resident = 0u32;
        let mut committed = 0u32;
        for e in self.tags.valid_entries().filter(|e| e.tid == tid) {
            let bit = 1u32 << e.reg.index();
            resident |= bit;
            if e.meta.c_bit {
                committed |= bit;
            }
        }
        Some((resident, committed))
    }

    fn occupancy(&self) -> (usize, usize) {
        (self.tags.valid_count(), self.tags.capacity())
    }

    fn debug_state(&self) -> String {
        format!(
            "VRMU {}/{} entries valid, {} fills pending, rollback depth {}",
            self.tags.valid_count(),
            self.tags.capacity(),
            self.tags.fills_pending_count(),
            self.rollback.len()
        )
    }

    fn drain(&mut self, region: RegRegion, mem: &mut FlatMem) {
        for e in self.tags.valid_entries() {
            if e.dirty {
                let addr = region.reg_addr(e.tid as usize, e.reg);
                mem.write(addr, AccessSize::B8, e.value);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ContextEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::stats::CoreStats;
    use virec_isa::instr::{AluOp, Operand2};
    use virec_isa::reg::names::*;
    use virec_mem::{Cache, CacheConfig, Fabric, FabricConfig};

    struct Rig {
        dcache: Cache,
        fabric: Fabric,
        mem: FlatMem,
        region: RegRegion,
        stats: CoreStats,
    }

    impl Rig {
        fn new() -> Rig {
            let region = RegRegion::new(0x8000, 8);
            Rig {
                dcache: Cache::new(CacheConfig::nmp_dcache(), 0),
                fabric: Fabric::new(FabricConfig::default()),
                mem: FlatMem::new(0, 0x10_000),
                region,
                stats: CoreStats::default(),
            }
        }

        fn env(&mut self) -> EngineEnv<'_> {
            EngineEnv {
                dcache: &mut self.dcache,
                fabric: &mut self.fabric,
                mem: &mut self.mem,
                region: self.region,
                stats: &mut self.stats,
            }
        }
    }

    fn add_instr(dst: virec_isa::Reg, a: virec_isa::Reg, b: virec_isa::Reg) -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            dst,
            src: a,
            rhs: Operand2::Reg(b),
        }
    }

    /// Drives acquire to Ready, ticking the machinery.
    fn acquire_to_ready(e: &mut VirecEngine, rig: &mut Rig, tid: u8, instr: &Instr) -> u64 {
        let mut now = 0;
        loop {
            let out = {
                let mut env = rig.env();
                e.acquire(now, tid, instr, &mut env)
            };
            if out == AcquireOutcome::Ready {
                return now;
            }
            rig.fabric.tick(now);
            rig.dcache.tick(now, &mut rig.fabric);
            let mut env = rig.env();
            e.tick(now, &mut env);
            now += 1;
            assert!(now < 10_000, "acquire never completed");
        }
    }

    #[test]
    fn fill_reads_initial_context_from_region() {
        let mut rig = Rig::new();
        let cfg = CoreConfig::virec(8, 16);
        let mut e = VirecEngine::new(&cfg);
        // Offload wrote x1 = 77 for thread 0.
        let addr = rig.region.reg_addr(0, X1);
        rig.mem.write_u64(addr, 77);
        let i = add_instr(X2, X1, XZR);
        acquire_to_ready(&mut e, &mut rig, 0, &i);
        assert_eq!(e.read(0, X1), 77);
        assert!(rig.stats.rf_misses >= 1);
        // x2 was destination-only: dummy-filled, no memory latency.
        assert!(rig.stats.rf_dummy_fills >= 1);
        e.commit_instr(0, &i);
    }

    #[test]
    fn spill_and_refill_roundtrip() {
        let mut rig = Rig::new();
        // RF with barely enough space: 12 entries. PLRU (age-only) lets the
        // idle thread's register age out — exactly the thrash LRC avoids —
        // which is what this round-trip test needs.
        let mut cfg = CoreConfig::virec(8, 12);
        cfg.policy = crate::config::PolicyKind::Plru;
        let mut e = VirecEngine::new(&cfg);

        // Write x1 of thread 0, then thrash with other threads until it is
        // evicted, then reload and check the value survived the round trip.
        let i = add_instr(X1, X1, XZR);
        acquire_to_ready(&mut e, &mut rig, 0, &i);
        e.write(0, X1, 0xBEEF);
        e.commit_instr(0, &i);

        let mut switched_from = 0u8;
        for t in 1..7u8 {
            // Each thread touches 3 registers → 18 regs pressure over 12.
            for r in [X3, X4, X5] {
                let j = add_instr(r, r, XZR);
                acquire_to_ready(&mut e, &mut rig, t, &j);
                e.commit_instr(t, &j);
            }
            {
                let mut env = rig.env();
                e.on_switch(0, switched_from, t, &mut env);
            }
            switched_from = t;
        }
        assert!(
            e.tags().lookup(0, X1).is_none(),
            "x1 should have been evicted under pressure"
        );
        // Reload.
        let k = add_instr(X2, X1, XZR);
        acquire_to_ready(&mut e, &mut rig, 0, &k);
        assert_eq!(e.read(0, X1), 0xBEEF, "value lost across spill/refill");
    }

    #[test]
    fn flush_clears_commit_bits() {
        let mut rig = Rig::new();
        let cfg = CoreConfig::virec(8, 16);
        let mut e = VirecEngine::new(&cfg);
        let i = add_instr(X1, X1, X2);
        acquire_to_ready(&mut e, &mut rig, 0, &i);
        let idx = e.tags().lookup(0, X1).unwrap();
        assert!(
            e.tags().entry(idx).meta.c_bit,
            "speculatively set on access"
        );
        e.flush_all_inflight(0);
        let idx = e.tags().lookup(0, X1).unwrap();
        assert!(!e.tags().entry(idx).meta.c_bit, "cleared by rollback flush");
        assert_eq!(e.tags().entry(idx).lock_count, 0, "locks released");
    }

    #[test]
    fn commit_keeps_commit_bit() {
        let mut rig = Rig::new();
        let cfg = CoreConfig::virec(8, 16);
        let mut e = VirecEngine::new(&cfg);
        let i = add_instr(X1, X1, X2);
        acquire_to_ready(&mut e, &mut rig, 0, &i);
        e.commit_instr(0, &i);
        let idx = e.tags().lookup(0, X1).unwrap();
        assert!(e.tags().entry(idx).meta.c_bit);
        assert_eq!(e.tags().entry(idx).lock_count, 0);
    }

    #[test]
    fn drain_writes_dirty_values() {
        let mut rig = Rig::new();
        let cfg = CoreConfig::virec(8, 16);
        let mut e = VirecEngine::new(&cfg);
        let i = add_instr(X1, X1, XZR);
        acquire_to_ready(&mut e, &mut rig, 0, &i);
        e.write(0, X1, 1234);
        e.commit_instr(0, &i);
        let region = rig.region;
        e.drain(region, &mut rig.mem);
        assert_eq!(rig.mem.read_u64(region.reg_addr(0, X1)), 1234);
    }

    #[test]
    fn xzr_reads_zero() {
        let cfg = CoreConfig::virec(8, 16);
        let e = VirecEngine::new(&cfg);
        assert_eq!(e.read(0, XZR), 0);
    }

    #[test]
    fn oldest_inflight_reports_mem() {
        let mut rig = Rig::new();
        let cfg = CoreConfig::virec(8, 16);
        let mut e = VirecEngine::new(&cfg);
        let ld = Instr::Ldr {
            dst: X1,
            base: X2,
            offset: virec_isa::MemOffset::Imm(0),
            size: AccessSize::B8,
        };
        rig.mem.write_u64(rig.region.reg_addr(0, X2), 0x100);
        acquire_to_ready(&mut e, &mut rig, 0, &ld);
        assert_eq!(e.oldest_inflight_is_mem(), Some(true));
        e.commit_instr(0, &ld);
        assert_eq!(e.oldest_inflight_is_mem(), None);
    }
}
