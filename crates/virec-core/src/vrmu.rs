//! The Virtual Register Management Unit (§5.1, Figure 8).
//!
//! The VRMU sits in the decode stage and consists of:
//!
//! * the **tag store** — a fully associative CAM mapping
//!   `(thread, architectural register)` to physical RF entries, carrying the
//!   T/C/A replacement metadata; and
//! * the **rollback queue** — a FIFO with one entry per in-flight
//!   instruction, used to reset the speculatively-set commit bits of
//!   registers whose instructions were flushed by a context switch, and to
//!   report whether the oldest in-flight instruction is a memory operation
//!   (one of the CSL masking signals).
//!
//! Unlike a cache, the tag store also carries the register *values* in this
//! simulator: the physical RF is the `value` field of each entry. Values
//! really travel through spill/fill, so the differential tests against the
//! golden interpreter validate the whole machinery.

use crate::config::PolicyKind;
use crate::policy::{select_victim, EntryMeta, XorShift, AGE_MAX, RRPV_INSERT, RRPV_MAX};
use std::collections::VecDeque;
use virec_isa::{Reg, RegList};

/// One physical register with its CAM tag and metadata.
#[derive(Clone, Copy, Debug)]
pub struct TagEntry {
    /// Owning thread (CAM tag, together with `reg`).
    pub tid: u8,
    /// Architectural register (CAM tag).
    pub reg: Reg,
    /// Current register value (the physical RF cell).
    pub value: u64,
    /// Modified since fill — must be spilled on eviction.
    pub dirty: bool,
    /// A fill from the backing store is in flight; value not yet usable.
    pub fill_pending: bool,
    /// How many in-flight instructions reference this entry (eviction lock).
    pub lock_count: u8,
    /// Replacement metadata.
    pub meta: EntryMeta,
}

impl TagEntry {
    const EMPTY: TagEntry = TagEntry {
        tid: 0,
        reg: Reg::XZR,
        value: 0,
        dirty: false,
        fill_pending: false,
        lock_count: 0,
        meta: EntryMeta {
            valid: false,
            locked: false,
            t_bits: 0,
            c_bit: false,
            a_bits: 0,
            last_access: 0,
            fill_seq: 0,
            rrpv: 0,
        },
    };
}

/// Result of requesting a physical register for `(tid, reg)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocOutcome {
    /// Allocated into a free entry.
    Free {
        /// Index of the allocated entry.
        idx: usize,
    },
    /// Allocated by evicting a victim; the caller must spill the victim if
    /// it was dirty.
    Evicted {
        /// Index of the (re-used) entry.
        idx: usize,
        /// The victim's owning thread.
        victim_tid: u8,
        /// The victim's architectural register.
        victim_reg: Reg,
        /// The victim's value at eviction time.
        victim_value: u64,
        /// Whether the victim must be written back.
        victim_dirty: bool,
    },
    /// Every valid entry is locked by in-flight instructions; retry after a
    /// commit frees locks.
    NoVictim,
}

/// Maximum hardware threads a tag store can map (bounds the reverse-map
/// size; far above the paper's 4–10 threads).
pub const MAX_THREADS: usize = 32;

const NO_ENTRY: u16 = u16::MAX;

/// The tag store: a fully associative register cache.
///
/// Lookups are O(1) through a `(thread, register) -> entry` reverse map —
/// the simulator's hottest path (hardware does this with the CAM match
/// lines).
#[derive(Clone)]
pub struct TagStore {
    entries: Vec<TagEntry>,
    /// Reverse map: `tid * 32 + reg` -> entry index (or `NO_ENTRY`).
    map: Vec<u16>,
    /// Occupancy bitset mirroring `entries[i].meta.valid` (bit `i % 64` of
    /// word `i / 64`). Validity only changes inside this module (allocate /
    /// evict), so the mirror cannot go stale through `entry_mut`. Hot-path
    /// scans walk set bits with `trailing_zeros` instead of every entry.
    valid: Vec<u64>,
    /// Ways out of service (RAS): spare ways awaiting activation plus
    /// retired ways. A masked way is never valid and never allocated.
    masked: Vec<u64>,
    /// Subset of `masked` that was permanently retired (a masked,
    /// non-retired way is an available spare).
    retired: Vec<u64>,
    policy: PolicyKind,
    stamp: u64,
    fill_seq: u64,
    rotate: u64,
    rng: XorShift,
}

/// Floor on in-service ways: masking must never leave fewer active ways
/// than the processor's in-flight register window needs (the same bound
/// [`crate::CoreConfig::validate`] enforces on `phys_regs`).
pub const MIN_ACTIVE_WAYS: usize = 12;

impl TagStore {
    /// Creates a tag store with `phys_regs` entries managed by `policy`.
    pub fn new(phys_regs: usize, policy: PolicyKind) -> TagStore {
        TagStore::with_spares(phys_regs, 0, policy)
    }

    /// A tag store with `spare_ways` additional ways held in reserve:
    /// physically present but masked until a RAS retirement activates
    /// them, so the in-service capacity stays `phys_regs`.
    pub fn with_spares(phys_regs: usize, spare_ways: usize, policy: PolicyKind) -> TagStore {
        let total = phys_regs + spare_ways;
        assert!(total < NO_ENTRY as usize);
        let words = total.div_ceil(64);
        let mut ts = TagStore {
            entries: vec![TagEntry::EMPTY; total],
            map: vec![NO_ENTRY; MAX_THREADS * 32],
            valid: vec![0; words],
            masked: vec![0; words],
            retired: vec![0; words],
            policy,
            stamp: 0,
            fill_seq: 0,
            rotate: 0,
            rng: XorShift::new(0x5EED_CAFE),
        };
        for idx in phys_regs..total {
            ts.masked[idx / 64] |= 1u64 << (idx % 64);
        }
        ts
    }

    /// Number of physical ways, including masked spares and retired ways.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Ways currently in service (capacity minus masked ways).
    pub fn active_capacity(&self) -> usize {
        self.entries.len() - self.masked_count()
    }

    /// Masked ways (spares not yet activated + retired ways).
    pub fn masked_count(&self) -> usize {
        self.masked.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Spare ways still available for activation.
    pub fn spare_ways_left(&self) -> usize {
        self.masked
            .iter()
            .zip(&self.retired)
            .map(|(&m, &r)| (m & !r).count_ones() as usize)
            .sum()
    }

    /// Whether way `idx` is out of service.
    pub fn is_masked(&self, idx: usize) -> bool {
        (self.masked[idx / 64] >> (idx % 64)) & 1 == 1
    }

    #[inline]
    fn map_slot(tid: u8, reg: Reg) -> usize {
        debug_assert!((tid as usize) < MAX_THREADS);
        tid as usize * 32 + reg.index()
    }

    #[inline]
    fn set_valid(&mut self, idx: usize) {
        self.valid[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn clear_valid(&mut self, idx: usize) {
        self.valid[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Indices of valid entries in ascending order, one `trailing_zeros`
    /// per set bit.
    fn valid_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.valid.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }

    /// Lowest-index free *in-service* entry (first bit neither valid nor
    /// masked). Padding bits past the capacity sit above every real bit in
    /// the last word, so a hit on one means the store is genuinely full.
    fn first_free(&self) -> Option<usize> {
        for (w, (&v, &m)) in self.valid.iter().zip(&self.masked).enumerate() {
            let bits = v | m;
            if bits != u64::MAX {
                let idx = w * 64 + (!bits).trailing_zeros() as usize;
                return (idx < self.entries.len()).then_some(idx);
            }
        }
        None
    }

    /// Looks up `(tid, reg)`; does not touch metadata.
    #[inline]
    pub fn lookup(&self, tid: u8, reg: Reg) -> Option<usize> {
        let idx = self.map[Self::map_slot(tid, reg)];
        if idx == NO_ENTRY {
            None
        } else {
            Some(idx as usize)
        }
    }

    /// Immutable access to an entry.
    pub fn entry(&self, idx: usize) -> &TagEntry {
        &self.entries[idx]
    }

    /// Mutable access to an entry.
    pub fn entry_mut(&mut self, idx: usize) -> &mut TagEntry {
        &mut self.entries[idx]
    }

    /// Records an access to entry `idx`: resets its age, ages everyone else,
    /// speculatively sets the commit bit (§5.1), and stamps perfect-LRU
    /// metadata.
    pub fn touch(&mut self, idx: usize) {
        self.stamp += 1;
        for w in 0..self.valid.len() {
            let mut bits = self.valid[w];
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let e = &mut self.entries[i];
                if i == idx {
                    e.meta.a_bits = 0;
                    e.meta.c_bit = true;
                    e.meta.last_access = self.stamp;
                    e.meta.rrpv = 0; // SRRIP hit promotion
                } else {
                    e.meta.a_bits = (e.meta.a_bits + 1).min(AGE_MAX);
                }
            }
        }
    }

    /// SRRIP aging: increment every evictable entry's RRPV until one
    /// saturates (bounded by the 2-bit range).
    fn srrip_age(&mut self) {
        if self.policy != PolicyKind::Srrip {
            return;
        }
        for _ in 0..RRPV_MAX {
            let any_max = self.valid_indices().any(|i| {
                let e = &self.entries[i];
                e.lock_count == 0 && !e.fill_pending && e.meta.rrpv >= RRPV_MAX
            });
            if any_max {
                return;
            }
            for w in 0..self.valid.len() {
                let mut bits = self.valid[w];
                while bits != 0 {
                    let i = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let e = &mut self.entries[i];
                    e.meta.rrpv = (e.meta.rrpv + 1).min(RRPV_MAX);
                }
            }
        }
    }

    /// Allocates a physical register for `(tid, reg)`, evicting if needed.
    /// The new entry starts invalid-valued (`fill_pending` decided by the
    /// caller) and locked by one reference.
    pub fn allocate(&mut self, tid: u8, reg: Reg) -> AllocOutcome {
        debug_assert!(self.lookup(tid, reg).is_none(), "allocating resident reg");
        let idx_and_victim = if let Some(idx) = self.first_free() {
            Some((idx, None))
        } else {
            self.srrip_age();
            let metas: Vec<EntryMeta> = self
                .entries
                .iter()
                .map(|e| {
                    let mut m = e.meta;
                    m.locked = e.lock_count > 0 || e.fill_pending;
                    m
                })
                .collect();
            self.rotate = self.rotate.wrapping_add(1);
            select_victim(self.policy, &metas, self.rotate, &mut self.rng).map(|idx| {
                let v = self.entries[idx];
                (idx, Some(v))
            })
        };

        let Some((idx, victim)) = idx_and_victim else {
            return AllocOutcome::NoVictim;
        };

        if let Some(v) = victim {
            self.map[Self::map_slot(v.tid, v.reg)] = NO_ENTRY;
        }
        self.map[Self::map_slot(tid, reg)] = idx as u16;
        self.set_valid(idx);

        self.fill_seq += 1;
        self.stamp += 1;
        let e = &mut self.entries[idx];
        *e = TagEntry {
            tid,
            reg,
            value: 0,
            dirty: false,
            fill_pending: false,
            lock_count: 0,
            meta: EntryMeta {
                valid: true,
                locked: false,
                t_bits: 0,
                c_bit: true,
                a_bits: 0,
                last_access: self.stamp,
                fill_seq: self.fill_seq,
                rrpv: RRPV_INSERT,
            },
        };

        match victim {
            None => AllocOutcome::Free { idx },
            Some(v) => AllocOutcome::Evicted {
                idx,
                victim_tid: v.tid,
                victim_reg: v.reg,
                victim_value: v.value,
                victim_dirty: v.dirty,
            },
        }
    }

    /// Selects and removes an additional eviction victim (for group
    /// evictions — paper future work). Returns the victim's identity and
    /// value, or `None` if no evictable entry exists.
    pub fn evict_one(&mut self) -> Option<(u8, Reg, u64, bool)> {
        let metas: Vec<EntryMeta> = self
            .entries
            .iter()
            .map(|e| {
                let mut m = e.meta;
                m.locked = e.lock_count > 0 || e.fill_pending;
                m
            })
            .collect();
        self.rotate = self.rotate.wrapping_add(1);
        let idx = select_victim(self.policy, &metas, self.rotate, &mut self.rng)?;
        let v = self.entries[idx];
        self.entries[idx] = TagEntry::EMPTY;
        self.clear_valid(idx);
        self.map[Self::map_slot(v.tid, v.reg)] = NO_ENTRY;
        Some((v.tid, v.reg, v.value, v.dirty))
    }

    /// Registers currently resident for thread `tid`.
    pub fn resident_regs(&self, tid: u8) -> Vec<Reg> {
        self.valid_indices()
            .map(|i| &self.entries[i])
            .filter(|e| e.tid == tid)
            .map(|e| e.reg)
            .collect()
    }

    /// Context-switch metadata update (§5.1): registers of the suspended
    /// thread get the maximum thread-recency value, everyone else is
    /// decremented, and the incoming thread's registers are zeroed.
    pub fn on_context_switch(&mut self, out_tid: u8, in_tid: u8) {
        for w in 0..self.valid.len() {
            let mut bits = self.valid[w];
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let e = &mut self.entries[i];
                if e.tid == out_tid {
                    e.meta.t_bits = AGE_MAX;
                } else if e.tid == in_tid {
                    e.meta.t_bits = 0;
                } else {
                    e.meta.t_bits = e.meta.t_bits.saturating_sub(1);
                }
            }
        }
    }

    /// Adds an in-flight reference to `(tid, reg)`, protecting it from
    /// eviction until commit or flush.
    pub fn lock(&mut self, idx: usize) {
        self.entries[idx].lock_count += 1;
    }

    /// Releases one in-flight reference.
    pub fn unlock(&mut self, idx: usize) {
        let e = &mut self.entries[idx];
        debug_assert!(e.lock_count > 0, "unlocking unlocked entry");
        e.lock_count = e.lock_count.saturating_sub(1);
    }

    /// Clears the commit bit of `(tid, reg)` if resident — the rollback
    /// queue's compaction operation for flushed registers.
    pub fn clear_commit(&mut self, tid: u8, reg: Reg) {
        if let Some(idx) = self.lookup(tid, reg) {
            self.entries[idx].meta.c_bit = false;
        }
    }

    /// Iterates over valid entries (for drain and debugging).
    pub fn valid_entries(&self) -> impl Iterator<Item = &TagEntry> {
        self.valid_indices().map(|i| &self.entries[i])
    }

    /// Number of valid entries (VRMU occupancy).
    pub fn valid_count(&self) -> usize {
        self.valid.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of entries with a fill in flight (for livelock dumps).
    pub fn fills_pending_count(&self) -> usize {
        self.valid_indices()
            .filter(|&i| self.entries[i].fill_pending)
            .count()
    }

    /// Entry index of the `nth` valid entry, wrapping modulo occupancy.
    fn nth_valid(&self, nth: usize) -> Option<usize> {
        let occupancy = self.valid_count();
        if occupancy == 0 {
            return None;
        }
        self.valid_indices().nth(nth % occupancy)
    }

    /// Physical index of the way behind the `nth` valid entry (the RAS
    /// layer resolves a fault's `nth` target to a concrete way before
    /// masking it). Wraps modulo occupancy; `None` when empty.
    pub fn resolve_nth_way(&self, nth: usize) -> Option<usize> {
        self.nth_valid(nth)
    }

    /// Activates one spare way (masked, not retired): clears its mask bit
    /// so it can be allocated. Returns its index, or `None` when the
    /// spare pool is exhausted.
    fn activate_spare(&mut self) -> Option<usize> {
        for w in 0..self.masked.len() {
            let spares = self.masked[w] & !self.retired[w];
            if spares != 0 {
                let idx = w * 64 + spares.trailing_zeros() as usize;
                self.masked[w] &= !(1u64 << (idx % 64));
                return Some(idx);
            }
        }
        None
    }

    /// RAS retirement: permanently masks way `idx`, activating a spare way
    /// (when `use_spare` and one is left) to preserve capacity. A valid
    /// occupant is *relocated* to a free in-service way — every consumer
    /// resolves entries through the reverse map at point of use, so live
    /// locks and pending fills move safely.
    ///
    /// Returns `Some(spared)` on success (`spared`: a spare was
    /// activated). Idempotent: a way that is already masked reports
    /// success without consuming anything. Returns `None` — refused — when
    /// the occupant has nowhere to go (store full of locked entries) or
    /// masking would drop the in-service capacity below
    /// [`MIN_ACTIVE_WAYS`]; the caller may evict an entry and retry.
    pub fn mask_way(&mut self, idx: usize, use_spare: bool) -> Option<bool> {
        if self.is_masked(idx) {
            return Some(false);
        }
        let spare = if use_spare {
            self.activate_spare()
        } else {
            None
        };
        // `active_capacity` already includes the just-activated spare;
        // masking `idx` will subtract one.
        let floor_after = self.active_capacity() - 1;
        if floor_after < MIN_ACTIVE_WAYS {
            if let Some(s) = spare {
                self.masked[s / 64] |= 1u64 << (s % 64);
            }
            return None;
        }
        if self.entries[idx].meta.valid {
            let target = match self.first_free() {
                Some(t) if t != idx => t,
                _ => {
                    if let Some(s) = spare {
                        self.masked[s / 64] |= 1u64 << (s % 64);
                    }
                    return None;
                }
            };
            let e = self.entries[idx];
            self.entries[target] = e;
            self.entries[idx] = TagEntry::EMPTY;
            self.set_valid(target);
            self.clear_valid(idx);
            self.map[Self::map_slot(e.tid, e.reg)] = target as u16;
        }
        self.masked[idx / 64] |= 1u64 << (idx % 64);
        self.retired[idx / 64] |= 1u64 << (idx % 64);
        Some(spare.is_some())
    }

    /// Fault injection: flips `bit` of the physical-RF cell behind the
    /// `nth` valid entry (an SRAM upset in the value array). Bookkeeping
    /// state is left untouched — a clean entry that is never read again
    /// and never written back masks the fault, exactly as hardware would.
    /// Returns a description of the corrupted site, or `None` when the
    /// store is empty.
    pub fn corrupt_value(&mut self, nth: usize, bit: u8) -> Option<String> {
        let idx = self.nth_valid(nth)?;
        let e = &mut self.entries[idx];
        e.value ^= 1 << (bit % 64);
        Some(format!(
            "tag-store[{idx}] t{} {} value bit {}",
            e.tid,
            e.reg,
            bit % 64
        ))
    }

    /// Fault injection: marks the `nth` valid entry as waiting for a fill
    /// that will never arrive (a lost BSI response). The entry becomes
    /// unreadable and unevictable, which must surface as a livelock.
    pub fn corrupt_stuck_fill(&mut self, nth: usize) -> Option<String> {
        let idx = self.nth_valid(nth)?;
        let e = &mut self.entries[idx];
        e.fill_pending = true;
        Some(format!(
            "tag-store[{idx}] t{} {} stuck fill_pending",
            e.tid, e.reg
        ))
    }

    /// Checks structural invariants (used by property tests): injective
    /// tags and a reverse map consistent with the entry array.
    pub fn check_invariants(&self) {
        for (i, a) in self.entries.iter().enumerate() {
            assert_eq!(
                (self.valid[i / 64] >> (i % 64)) & 1 == 1,
                a.meta.valid,
                "occupancy bitset out of sync at entry {i}"
            );
            if !a.meta.valid {
                continue;
            }
            assert!(!a.reg.is_zero(), "xzr must never be cached");
            assert_eq!(
                self.map[Self::map_slot(a.tid, a.reg)] as usize,
                i,
                "reverse map out of sync for t{} {:?}",
                a.tid,
                a.reg
            );
            for b in &self.entries[i + 1..] {
                if b.meta.valid {
                    assert!(
                        !(a.tid == b.tid && a.reg == b.reg),
                        "duplicate mapping for t{} {:?}",
                        a.tid,
                        a.reg
                    );
                }
            }
        }
        // Every mapped slot points at a matching valid entry.
        for (slot, &idx) in self.map.iter().enumerate() {
            if idx == NO_ENTRY {
                continue;
            }
            let e = &self.entries[idx as usize];
            assert!(e.meta.valid, "map points at invalid entry");
            assert_eq!(Self::map_slot(e.tid, e.reg), slot, "map slot mismatch");
        }
        // RAS masking: a masked way is out of service (never valid) and
        // retired ways are a subset of masked ways.
        for i in 0..self.entries.len() {
            let masked = (self.masked[i / 64] >> (i % 64)) & 1 == 1;
            let retired = (self.retired[i / 64] >> (i % 64)) & 1 == 1;
            if masked {
                assert!(!self.entries[i].meta.valid, "masked way {i} holds an entry");
            }
            if retired {
                assert!(masked, "retired way {i} must be masked");
            }
        }
        let retired_count: usize = self.retired.iter().map(|w| w.count_ones() as usize).sum();
        assert!(
            self.active_capacity() >= MIN_ACTIVE_WAYS || retired_count == 0,
            "retirement shrank capacity below the in-flight window"
        );
    }
}

/// One rollback-queue record: the registers an in-flight instruction
/// accessed and whether it is a memory operation.
#[derive(Clone, Copy, Debug)]
pub struct RollbackEntry {
    /// Registers the instruction referenced (sources and destinations).
    pub regs: RegList,
    /// Whether the instruction is a load or store (CSL masking signal).
    pub is_mem: bool,
}

/// The rollback queue (§5.1): FIFO with a depth equal to the maximum number
/// of instructions in the processor backend.
#[derive(Clone)]
pub struct RollbackQueue {
    entries: VecDeque<RollbackEntry>,
    depth: usize,
}

impl RollbackQueue {
    /// Creates a queue with the given depth.
    pub fn new(depth: usize) -> RollbackQueue {
        RollbackQueue {
            entries: VecDeque::with_capacity(depth),
            depth,
        }
    }

    /// Records an instruction entering the backend.
    ///
    /// # Panics
    /// Panics if the queue overflows — the pipeline must never have more
    /// in-flight instructions than the backend depth.
    pub fn push(&mut self, entry: RollbackEntry) {
        assert!(
            self.entries.len() < self.depth,
            "rollback queue overflow (depth {})",
            self.depth
        );
        self.entries.push_back(entry);
    }

    /// Removes the oldest entry when its instruction commits.
    pub fn pop_commit(&mut self) -> Option<RollbackEntry> {
        self.entries.pop_front()
    }

    /// Removes the youngest entry — used when a branch redirect squashes an
    /// already-acquired instruction in decode.
    pub fn pop_youngest(&mut self) -> Option<RollbackEntry> {
        self.entries.pop_back()
    }

    /// Whether the oldest in-flight instruction is a memory operation.
    /// `None` when the backend is empty.
    pub fn oldest_is_mem(&self) -> Option<bool> {
        self.entries.front().map(|e| e.is_mem)
    }

    /// Compacts the queue on a pipeline flush: returns the union of all
    /// in-flight registers (the 1-hot vector of §5.1) and empties the queue.
    pub fn flush(&mut self) -> Vec<Reg> {
        let mut seen = [false; 32];
        let mut out = Vec::new();
        for e in self.entries.drain(..) {
            for r in e.regs.iter() {
                if !seen[r.index()] {
                    seen[r.index()] = true;
                    out.push(r);
                }
            }
        }
        out
    }

    /// Number of in-flight instructions tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the backend is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fault injection: corrupts the `nth` occupied slot (modulo occupancy).
    /// High `bit` values toggle the is-mem CSL signal; otherwise one
    /// recorded register identity is rewritten, so commit/flush will unlock
    /// and clear the wrong registers. Returns a description of the
    /// corrupted site, or `None` when the queue is empty.
    pub fn corrupt_slot(&mut self, nth: usize, bit: u8) -> Option<String> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        let slot = &mut self.entries[nth % n];
        if slot.regs.is_empty() || bit >= 56 {
            slot.is_mem = !slot.is_mem;
            return Some(format!(
                "rollback[{}] is_mem toggled to {}",
                nth % n,
                slot.is_mem
            ));
        }
        let regs: Vec<Reg> = slot.regs.iter().collect();
        let i = (bit as usize / 5) % regs.len();
        let old = regs[i];
        let new = Reg::new(((old.index() ^ (1 << (bit % 5))) % 31) as u8);
        let mut rewritten = RegList::new();
        for (j, &r) in regs.iter().enumerate() {
            rewritten.push(if j == i { new } else { r });
        }
        slot.regs = rewritten;
        Some(format!(
            "rollback[{}] reg {old} rewritten to {new}",
            nth % n
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::reg::names::*;

    #[test]
    fn allocate_then_lookup() {
        let mut ts = TagStore::new(4, PolicyKind::Lrc);
        let out = ts.allocate(0, X1);
        assert!(matches!(out, AllocOutcome::Free { .. }));
        assert!(ts.lookup(0, X1).is_some());
        assert!(ts.lookup(1, X1).is_none(), "tags include the thread id");
        ts.check_invariants();
    }

    #[test]
    fn eviction_when_full() {
        let mut ts = TagStore::new(2, PolicyKind::Lrc);
        let AllocOutcome::Free { idx } = ts.allocate(0, X1) else {
            panic!()
        };
        ts.entry_mut(idx).value = 111;
        ts.entry_mut(idx).dirty = true;
        let _ = ts.allocate(0, X2);
        // Make X1 the clear victim: committed + old.
        let i1 = ts.lookup(0, X1).unwrap();
        ts.entry_mut(i1).meta.a_bits = AGE_MAX;
        let out = ts.allocate(0, X3);
        match out {
            AllocOutcome::Evicted {
                victim_reg,
                victim_value,
                victim_dirty,
                ..
            } => {
                assert_eq!(victim_reg, X1);
                assert_eq!(victim_value, 111);
                assert!(victim_dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(ts.lookup(0, X1).is_none());
        assert!(ts.lookup(0, X3).is_some());
        ts.check_invariants();
    }

    #[test]
    fn locked_entries_block_eviction() {
        let mut ts = TagStore::new(1, PolicyKind::Lrc);
        let AllocOutcome::Free { idx } = ts.allocate(0, X1) else {
            panic!()
        };
        ts.lock(idx);
        assert_eq!(ts.allocate(0, X2), AllocOutcome::NoVictim);
        ts.unlock(idx);
        assert!(matches!(ts.allocate(0, X2), AllocOutcome::Evicted { .. }));
    }

    #[test]
    fn touch_updates_ages_and_commit() {
        let mut ts = TagStore::new(3, PolicyKind::Lrc);
        let AllocOutcome::Free { idx: i1 } = ts.allocate(0, X1) else {
            panic!()
        };
        let AllocOutcome::Free { idx: i2 } = ts.allocate(0, X2) else {
            panic!()
        };
        ts.entry_mut(i1).meta.c_bit = false;
        ts.touch(i1);
        assert_eq!(ts.entry(i1).meta.a_bits, 0);
        assert!(ts.entry(i1).meta.c_bit, "touch speculatively sets C");
        assert!(ts.entry(i2).meta.a_bits > 0, "others age");
    }

    #[test]
    fn ages_saturate() {
        let mut ts = TagStore::new(2, PolicyKind::Lrc);
        let AllocOutcome::Free { idx: i1 } = ts.allocate(0, X1) else {
            panic!()
        };
        let AllocOutcome::Free { idx: i2 } = ts.allocate(0, X2) else {
            panic!()
        };
        for _ in 0..20 {
            ts.touch(i1);
        }
        assert_eq!(ts.entry(i2).meta.a_bits, AGE_MAX);
    }

    #[test]
    fn context_switch_updates_t_bits() {
        let mut ts = TagStore::new(6, PolicyKind::Lrc);
        let _ = ts.allocate(0, X1);
        let _ = ts.allocate(1, X1);
        let _ = ts.allocate(2, X1);
        // Give thread 2 a mid-range T value to observe the decrement.
        let i2 = ts.lookup(2, X1).unwrap();
        ts.entry_mut(i2).meta.t_bits = 3;
        ts.on_context_switch(0, 1);
        assert_eq!(ts.entry(ts.lookup(0, X1).unwrap()).meta.t_bits, AGE_MAX);
        assert_eq!(ts.entry(ts.lookup(1, X1).unwrap()).meta.t_bits, 0);
        assert_eq!(ts.entry(ts.lookup(2, X1).unwrap()).meta.t_bits, 2);
    }

    #[test]
    fn clear_commit_only_if_resident() {
        let mut ts = TagStore::new(2, PolicyKind::Lrc);
        let AllocOutcome::Free { idx } = ts.allocate(0, X1) else {
            panic!()
        };
        ts.touch(idx);
        ts.clear_commit(0, X1);
        assert!(!ts.entry(idx).meta.c_bit);
        ts.clear_commit(0, X9); // absent: no-op, must not panic
    }

    #[test]
    fn rollback_fifo_order_and_mem_signal() {
        let mut rq = RollbackQueue::new(4);
        let mut regs1 = RegList::new();
        regs1.push(X1);
        rq.push(RollbackEntry {
            regs: regs1,
            is_mem: true,
        });
        let mut regs2 = RegList::new();
        regs2.push(X2);
        rq.push(RollbackEntry {
            regs: regs2,
            is_mem: false,
        });
        assert_eq!(rq.oldest_is_mem(), Some(true));
        let e = rq.pop_commit().unwrap();
        assert!(e.regs.contains(X1));
        assert_eq!(rq.oldest_is_mem(), Some(false));
    }

    #[test]
    fn rollback_flush_compacts_to_unique_regs() {
        let mut rq = RollbackQueue::new(4);
        for regs in [[X1, X2], [X2, X3]] {
            let mut l = RegList::new();
            l.push(regs[0]);
            l.push(regs[1]);
            rq.push(RollbackEntry {
                regs: l,
                is_mem: false,
            });
        }
        let mut flushed = rq.flush();
        flushed.sort();
        assert_eq!(flushed, vec![X1, X2, X3]);
        assert!(rq.is_empty());
        assert_eq!(rq.oldest_is_mem(), None);
    }

    #[test]
    #[should_panic(expected = "rollback queue overflow")]
    fn rollback_overflow_panics() {
        let mut rq = RollbackQueue::new(1);
        rq.push(RollbackEntry {
            regs: RegList::new(),
            is_mem: false,
        });
        rq.push(RollbackEntry {
            regs: RegList::new(),
            is_mem: false,
        });
    }

    #[test]
    fn spare_ways_start_masked() {
        let ts = TagStore::with_spares(16, 2, PolicyKind::Lrc);
        assert_eq!(ts.capacity(), 18);
        assert_eq!(ts.active_capacity(), 16);
        assert_eq!(ts.spare_ways_left(), 2);
        assert!(ts.is_masked(16));
        assert!(ts.is_masked(17));
        ts.check_invariants();
    }

    #[test]
    fn mask_way_relocates_occupant_and_activates_spare() {
        let mut ts = TagStore::with_spares(16, 1, PolicyKind::Lrc);
        // Fill every in-service way so relocation must use the spare.
        for i in 0..16 {
            let _ = ts.allocate((i / 4) as u8, Reg::new((1 + i % 16) as u8));
        }
        let idx = ts.lookup(0, X1).unwrap();
        let e = *ts.entry(idx);
        ts.lock(idx);
        ts.entry_mut(idx).value = 0xDEAD;
        assert_eq!(ts.mask_way(idx, true), Some(true), "spare activated");
        assert!(ts.is_masked(idx));
        assert_eq!(ts.spare_ways_left(), 0);
        assert_eq!(ts.active_capacity(), 16, "spare preserved capacity");
        // The occupant survived relocation with its lock and value.
        let new_idx = ts.lookup(e.tid, e.reg).unwrap();
        assert_ne!(new_idx, idx);
        assert_eq!(ts.entry(new_idx).value, 0xDEAD);
        assert_eq!(ts.entry(new_idx).lock_count, 1);
        ts.check_invariants();
        // Idempotent re-application consumes nothing further.
        assert_eq!(ts.mask_way(idx, true), Some(false));
        ts.check_invariants();
    }

    #[test]
    fn mask_way_without_spare_shrinks_capacity() {
        let mut ts = TagStore::new(16, PolicyKind::Lrc);
        let _ = ts.allocate(0, X1);
        let idx = ts.lookup(0, X1).unwrap();
        assert_eq!(ts.mask_way(idx, true), Some(false), "no spare to activate");
        assert_eq!(ts.active_capacity(), 15);
        assert!(ts.lookup(0, X1).is_some(), "occupant relocated");
        ts.check_invariants();
    }

    #[test]
    fn mask_way_refuses_below_floor() {
        let mut ts = TagStore::new(MIN_ACTIVE_WAYS, PolicyKind::Lrc);
        let _ = ts.allocate(0, X1);
        let idx = ts.lookup(0, X1).unwrap();
        assert_eq!(ts.mask_way(idx, false), None);
        assert!(!ts.is_masked(idx));
        ts.check_invariants();
    }

    #[test]
    fn masked_ways_are_never_allocated() {
        let mut ts = TagStore::with_spares(12, 1, PolicyKind::Lrc);
        for i in 0..12 {
            let _ = ts.allocate(0, Reg::new((1 + i) as u8));
        }
        assert_eq!(ts.valid_count(), 12);
        // Store full, spare still masked: allocation must evict, not use
        // the spare.
        match ts.allocate(0, Reg::new(13)) {
            AllocOutcome::Evicted { idx, .. } => assert!(idx < 12, "spare way must stay masked"),
            other => panic!("expected eviction, got {other:?}"),
        }
        ts.check_invariants();
    }

    #[test]
    fn fill_pending_blocks_eviction() {
        let mut ts = TagStore::new(1, PolicyKind::Plru);
        let AllocOutcome::Free { idx } = ts.allocate(0, X1) else {
            panic!()
        };
        ts.entry_mut(idx).fill_pending = true;
        assert_eq!(ts.allocate(0, X2), AllocOutcome::NoVictim);
    }
}
