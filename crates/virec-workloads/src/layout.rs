//! Per-core memory layout.
//!
//! Each near-memory core owns a disjoint slice of physical memory holding
//! its register-backing region and its workload data, mirroring the
//! per-processor reserved regions of the paper's offload mechanism (§6).
//! Keeping the slices disjoint also makes the DRAM bank behaviour realistic
//! when several cores run concurrently.

/// Address-space layout for one core.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// Base of the register-backing (context) region, 64-byte aligned.
    pub region_base: u64,
    /// Base of the workload data segment, 64-byte aligned.
    pub data_base: u64,
    /// Size of the data segment in bytes.
    pub data_size: u64,
    /// Timing-only base address of the code image.
    pub code_base: u64,
}

/// Span of address space given to each core.
pub const CORE_SPAN: u64 = 0x100_0000; // 16 MiB

/// Total functional memory needed for `ncores` cores.
pub fn mem_size(ncores: usize) -> usize {
    (ncores as u64 * CORE_SPAN) as usize
}

impl Layout {
    /// Layout for core `core_id`.
    pub fn for_core(core_id: usize) -> Layout {
        let base = core_id as u64 * CORE_SPAN;
        Layout {
            region_base: base + 0x1000,
            data_base: base + 0x10_000,
            data_size: CORE_SPAN - 0x10_000,
            code_base: 0x1_0000_0000 + base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_are_disjoint() {
        let a = Layout::for_core(0);
        let b = Layout::for_core(1);
        assert!(a.data_base + a.data_size <= b.region_base);
        assert!(a.code_base != b.code_base);
    }

    #[test]
    fn alignment() {
        for i in 0..8 {
            let l = Layout::for_core(i);
            assert_eq!(l.region_base % 64, 0);
            assert_eq!(l.data_base % 64, 0);
        }
    }

    #[test]
    fn mem_size_covers_all_cores() {
        let l = Layout::for_core(7);
        assert!((l.data_base + l.data_size) as usize <= mem_size(8));
    }
}
