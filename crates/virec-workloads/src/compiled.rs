//! Compiled-kernel workloads: `virec-cc` output adapted to the
//! [`Workload`] interface so compiled programs run under the same
//! event-driven harness, golden verification, and digesting as the
//! hand-written suite.
//!
//! The canonical kernel here is `gather_cc` — the same five-parameter
//! gather the compiler-budget experiments sweep (`t0`=data, `t1`=indices,
//! `t2`=bound, `t3`=start, `t4`=stride) — parameterized by register
//! budget and allocation strategy so the budget tuner can treat the
//! compiler as just another design-space axis.

use crate::layout::Layout;
use crate::workload::Workload;
use virec_cc::ir::{BinOp, Cmp, Function, Operand, Stmt};
use virec_cc::{compile_with, AllocStrategy, CompileError, Compiled};
use virec_isa::{FlatMem, Reg};

/// Per-thread spill-frame stride in bytes (32 eight-byte slots).
pub const FRAME_STRIDE: u64 = 0x100;

/// The five-parameter gather kernel in compiler IR:
/// `Σ data[idx[i]]` for `i = start; i < n; i += step`.
pub fn gather_cc_ir() -> Function {
    Function {
        name: "gather_cc".into(),
        params: vec![0, 1, 2, 3, 4],
        body: vec![
            Stmt::def_const(5, 0),
            Stmt::def_copy(6, 3),
            Stmt::While {
                cond: (Operand::Temp(6), Cmp::Lt, Operand::Temp(2)),
                body: vec![
                    Stmt::Load {
                        dst: 7,
                        base: 1,
                        index: Operand::Temp(6),
                    },
                    Stmt::Load {
                        dst: 8,
                        base: 0,
                        index: Operand::Temp(7),
                    },
                    Stmt::def_bin(5, BinOp::Add, Operand::Temp(5), Operand::Temp(8)),
                    Stmt::def_bin(6, BinOp::Add, Operand::Temp(6), Operand::Temp(4)),
                ],
            },
            Stmt::Return {
                value: Operand::Temp(5),
            },
        ],
    }
}

/// A compiled kernel wrapped as a runnable workload, keeping the
/// [`Compiled`] artifact alongside so callers can inspect spill counts or
/// translation-validate the exact program being driven.
pub struct CompiledWorkload {
    /// The harness-facing workload.
    pub workload: Workload,
    /// The compiler artifact the workload's program came from.
    pub compiled: Compiled,
}

/// Compiles `gather_cc` at `budget` registers with `strategy` and wraps it
/// as a workload: data and index arrays live at the layout's data base,
/// and each thread gets a private spill frame carved out past them.
pub fn gather_cc(
    n: u64,
    layout: Layout,
    budget: usize,
    strategy: AllocStrategy,
) -> Result<CompiledWorkload, CompileError> {
    let compiled = compile_with(&gather_cc_ir(), budget, strategy)?;
    assert!(
        (compiled.frame_slots as u64) * 8 <= FRAME_STRIDE,
        "spill frame exceeds the per-thread stride"
    );

    let data_base = layout.data_base;
    let idx_base = data_base + n * 8;
    // Per-thread spill frames, aligned past the kernel data.
    let frames_base = (idx_base + n * 8).next_multiple_of(FRAME_STRIDE);
    let frame_reg = compiled.frame_reg;
    let program = compiled.program.clone();

    let workload = Workload::from_parts(
        "gather_cc",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for i in 0..n {
                mem.write_u64(data_base + i * 8, i.wrapping_mul(17));
                mem.write_u64(idx_base + i * 8, (i * 13) % n);
            }
        }),
        Box::new(move |tid, nthreads| {
            vec![
                (Reg::new(0), data_base),
                (Reg::new(1), idx_base),
                (Reg::new(2), n),
                (Reg::new(3), tid as u64),
                (Reg::new(4), nthreads as u64),
                (frame_reg, frames_base + tid as u64 * FRAME_STRIDE),
            ]
        }),
    );
    Ok(CompiledWorkload { workload, compiled })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_stay_clear_of_kernel_data() {
        let layout = Layout::for_core(0);
        let n = 64u64;
        let cw = gather_cc(n, layout, 2, AllocStrategy::GraphColor).unwrap();
        let idx_end = layout.data_base + 2 * n * 8;
        for t in 0..4 {
            let ctx = cw.workload.thread_ctx(t, 4);
            let (_, frame) = ctx
                .iter()
                .find(|(r, _)| *r == cw.compiled.frame_reg)
                .copied()
                .unwrap();
            assert!(frame >= idx_end);
            assert_eq!(frame % FRAME_STRIDE, 0);
            assert!(frame + 8 * cw.compiled.frame_slots as u64 <= frame + FRAME_STRIDE);
        }
    }

    #[test]
    fn budget_errors_propagate() {
        let layout = Layout::for_core(0);
        assert!(gather_cc(16, layout, 0, AllocStrategy::GraphColor).is_err());
        assert!(gather_cc(16, layout, 18, AllocStrategy::LinearScan).is_err());
    }
}
