//! Workload-level compiler register reduction (§4.2).
//!
//! Wraps [`virec_isa::reduce::demote_registers_with_base`] for multi-thread
//! workloads: the outer-loop-only registers identified by static analysis
//! are demoted to per-thread spill areas at the tail of the data segment,
//! addressed through a dedicated base register (`x30`, unused by the
//! kernels), and the per-thread contexts are extended with that base.

use crate::workload::Workload;
use std::sync::Arc;
use virec_isa::analysis::RegisterUsage;
use virec_isa::reduce::demote_registers_with_base;
use virec_isa::{reg::names::X30, Reg};

/// Spill-area stride per thread (one cache line is plenty: ≤8 demoted
/// registers per kernel).
pub const SPILL_STRIDE: u64 = 64;

/// Applies compiler register reduction to `workload`, demoting its
/// outer-loop-only registers. Returns the transformed workload and the
/// demoted register set.
///
/// Returns the workload unchanged (and an empty set) when there is nothing
/// to demote — single-loop kernels whose registers are all part of the
/// active context.
pub fn reduce_workload(workload: Workload) -> (Workload, Vec<Reg>) {
    let usage = RegisterUsage::analyze(workload.program());
    // Never demote the spill base itself; skip kernels without outer-only
    // registers.
    let demoted: Vec<Reg> = usage
        .outer_only
        .iter()
        .copied()
        .filter(|&r| r != X30)
        .collect();
    if demoted.is_empty() || usage.max_depth < 2 {
        return (workload, Vec::new());
    }

    let reduced = demote_registers_with_base(workload.program(), &demoted, X30);
    // Spill areas live at the tail of the core's data segment, far from the
    // kernels' arrays (which grow from the bottom).
    let spill_top = workload.layout.data_base + workload.layout.data_size - 64 * SPILL_STRIDE;

    let name: &'static str = Box::leak(format!("{}_reduced", workload.name).into_boxed_str());
    let inner_ctx = ArcCtx(Arc::new(workload));
    let n = inner_ctx.0.n;
    let layout = inner_ctx.0.layout;
    let init_wl = inner_ctx.clone();

    let out = Workload::from_parts(
        name,
        n,
        layout,
        reduced.program,
        Box::new(move |mem| init_wl.0.init_mem(mem)),
        Box::new(move |tid, nthreads| {
            let mut ctx = inner_ctx.0.thread_ctx(tid, nthreads);
            ctx.push((X30, spill_top + tid as u64 * SPILL_STRIDE));
            ctx
        }),
    );
    (out, demoted)
}

#[derive(Clone)]
struct ArcCtx(Arc<Workload>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::layout::Layout;
    use virec_isa::{ExecOutcome, FlatMem, Interpreter, ThreadCtx};

    fn final_state(w: &Workload, nthreads: usize) -> (FlatMem, Vec<[u64; 31]>) {
        let mut mem = FlatMem::new(0, crate::layout::mem_size(1));
        w.init_mem(&mut mem);
        let mut regs = Vec::new();
        for t in 0..nthreads {
            let mut ctx = ThreadCtx::new();
            for (r, v) in w.thread_ctx(t, nthreads) {
                ctx.set(r, v);
            }
            let out = Interpreter::new(w.program(), &mut mem).run(&mut ctx, 50_000_000);
            assert!(matches!(out, ExecOutcome::Halted { .. }));
            regs.push(ctx.reg_image());
        }
        (mem, regs)
    }

    #[test]
    fn spmv_reduction_preserves_results() {
        let layout = Layout::for_core(0);
        let base = kernels::sparse::spmv(64, layout);
        let (reduced, demoted) = reduce_workload(kernels::sparse::spmv(64, layout));
        assert!(!demoted.is_empty(), "spmv has outer-only registers");

        let (mem_a, _) = final_state(&base, 3);
        let (mem_b, _) = final_state(&reduced, 3);
        // The y vector (kernel output) must be identical. Compare the data
        // arrays below the spill area.
        let lo = layout.data_base as usize;
        let hi = (layout.data_base + layout.data_size - 64 * SPILL_STRIDE) as usize;
        assert_eq!(&mem_a.bytes()[lo..hi], &mem_b.bytes()[lo..hi]);
    }

    #[test]
    fn reduction_shrinks_offloaded_context_pressure() {
        let layout = Layout::for_core(0);
        let base = kernels::sparse::spmv(64, layout);
        let (reduced, demoted) = reduce_workload(kernels::sparse::spmv(64, layout));
        let ub = base.register_usage();
        let ur = reduced.register_usage();
        // Demoted registers must no longer appear outside loops... they do
        // appear (in reload/spill instructions), but each becomes part of
        // whichever loop the reference sits in; the *outer-only* set must
        // not grow beyond the spill base register.
        assert!(ur.max_depth == ub.max_depth);
        assert!(!demoted.is_empty());
        // Inner working set must not grow by more than the spill base.
        assert!(ur.innermost.len() <= ub.innermost.len() + 1);
    }

    #[test]
    fn single_loop_kernels_unchanged() {
        let layout = Layout::for_core(0);
        let (w, demoted) = reduce_workload(kernels::spatter::gather(64, layout));
        assert!(demoted.is_empty());
        assert_eq!(w.name, "gather");
    }

    #[test]
    fn meabo_reduction_preserves_results() {
        let layout = Layout::for_core(0);
        let base = kernels::meabo::meabo(128, layout);
        let (reduced, demoted) = reduce_workload(kernels::meabo::meabo(128, layout));
        if demoted.is_empty() {
            return; // nothing outer-only in this build of the kernel
        }
        let (mem_a, _) = final_state(&base, 2);
        let (mem_b, _) = final_state(&reduced, 2);
        let lo = layout.data_base as usize;
        let hi = (layout.data_base + layout.data_size - 64 * SPILL_STRIDE) as usize;
        assert_eq!(&mem_a.bytes()[lo..hi], &mem_b.bytes()[lo..hi]);
    }
}
