//! Kernel implementations, grouped by originating suite.

pub mod dense;
pub mod meabo;
pub mod pointer;
pub mod sparse;
pub mod spatter;
pub mod stream;

pub(crate) use helpers::*;

mod helpers {
    use virec_isa::Reg;

    /// Shared register conventions across kernels — keeping them uniform
    /// makes Figure 2's utilization comparison meaningful.
    pub mod regs {
        use virec_isa::reg::names;
        use virec_isa::Reg;

        /// Accumulator / result.
        pub const ACC: Reg = names::X0;
        /// Loop induction variable (starts at `tid`).
        pub const I: Reg = names::X1;
        /// Primary data base pointer.
        pub const BASE_A: Reg = names::X2;
        /// Secondary base pointer (indices, second array).
        pub const BASE_B: Reg = names::X3;
        /// Loop bound.
        pub const BOUND: Reg = names::X4;
        /// Scratch.
        pub const T0: Reg = names::X5;
        /// Scratch.
        pub const T1: Reg = names::X6;
        /// Stride (number of hardware threads).
        pub const STRIDE: Reg = names::X7;
        /// Output base pointer.
        pub const OUT: Reg = names::X8;
        /// Thread id / output slot.
        pub const TID: Reg = names::X9;
        /// Extra operands for wider kernels.
        pub const E0: Reg = names::X10;
        /// Extra operands for wider kernels.
        pub const E1: Reg = names::X11;
        /// Extra operands for wider kernels.
        pub const E2: Reg = names::X12;
        /// Extra operands for wider kernels.
        pub const E3: Reg = names::X13;
    }

    /// The common per-thread context prologue: interleaved partitioning.
    pub fn base_ctx(tid: usize, nthreads: usize, n: u64) -> Vec<(Reg, u64)> {
        vec![
            (regs::ACC, 0),
            (regs::I, tid as u64),
            (regs::BOUND, n),
            (regs::STRIDE, nthreads as u64),
            (regs::TID, tid as u64),
        ]
    }
}
