//! A Meabo-style mixed-phase kernel \[7\].
//!
//! Meabo interleaves compute-bound and memory-bound phases. This kernel
//! runs an outer loop over blocks; each block executes
//!
//! 1. a **compute phase** — multiple ALU operations per element over a
//!    streaming array (registers set A), and
//! 2. a **random-access phase** — indirect reads (registers set B).
//!
//! Different subsets of the register context are live in each phase, the
//! behaviour the paper calls out for *meabo* in §6.1 (partial contexts per
//! quantum, high temporal register locality between partial executions).

use super::regs::*;
use crate::data;
use crate::layout::Layout;
use crate::workload::Workload;
use virec_isa::{Asm, Cond, FlatMem};

/// Elements per block (per phase pass).
const BLOCK: u64 = 32;

/// Mixed compute + random-access phases over `n` elements.
pub fn meabo(n: u64, layout: Layout) -> Workload {
    let a_base = layout.data_base; // streamed in phase 1
    let c_base = a_base + n * 8; // phase-1 output
    let ridx_base = c_base + n * 8; // random indices for phase 2
    let out_base = ridx_base + n * 8; // per-thread results

    let blocks = (n / BLOCK).max(1);

    let mut asm = Asm::new("meabo");
    // Outer loop over blocks: I = block (starts at tid, strides by T).
    // E2 = element cursor within the block (recomputed per phase).
    asm.label("blocks");
    asm.mov_imm(E3, BLOCK as i64);
    asm.mul(E2, I, E3); // e2 = block * BLOCK (phase-1 cursor)
    asm.add(E3, E2, E3); // e3 = block end

    // Phase 1: compute-heavy stream — c[j] = ((a[j]*3) ^ a[j]) >> 1 + j.
    asm.label("phase1");
    asm.ldr_idx(T0, BASE_A, E2, 3); // t0 = a[j]
    asm.mov_imm(T1, 3);
    asm.mul(T1, T0, T1);
    asm.eor(T1, T1, T0);
    asm.lsri(T1, T1, 1);
    asm.add(T1, T1, E2);
    asm.str_idx(T1, BASE_B, E2, 3); // c[j] = t1
    asm.addi(E2, E2, 1);
    asm.cmp(E2, E3);
    asm.bcc(Cond::Lt, "phase1");

    // Phase 2: random gather — sum += c[ridx[j]] over the same block.
    asm.mov_imm(E1, BLOCK as i64);
    asm.mul(E2, I, E1); // reset cursor
    asm.label("phase2");
    asm.ldr_idx(T0, E0, E2, 3); // t0 = ridx[j]
    asm.ldr_idx(T1, BASE_B, T0, 3); // t1 = c[t0]
    asm.add(ACC, ACC, T1);
    asm.addi(E2, E2, 1);
    asm.cmp(E2, E3);
    asm.bcc(Cond::Lt, "phase2");

    asm.add(I, I, STRIDE);
    asm.cmp(I, BOUND);
    asm.bcc(Cond::Lt, "blocks");
    asm.str_idx(ACC, OUT, TID, 3);
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "meabo",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 40).into_iter().enumerate() {
                mem.write_u64(a_base + i as u64 * 8, v & 0xFFFF_FFFF);
            }
            // Random indices constrained to each element's own block: the
            // random-access phase reads values the same thread produced in
            // its compute phase (race-free across threads, and the source
            // of meabo's high temporal register/data locality).
            for (i, r) in data::uniform_indices(BLOCK, n as usize, 41)
                .into_iter()
                .enumerate()
            {
                let block_base = (i as u64 / BLOCK) * BLOCK;
                mem.write_u64(ridx_base + i as u64 * 8, block_base + r);
            }
        }),
        Box::new(move |tid, nthreads| {
            vec![
                (ACC, 0),
                (I, tid as u64),
                (BASE_A, a_base),
                (BASE_B, c_base),
                (E0, ridx_base),
                (BOUND, blocks),
                (STRIDE, nthreads as u64),
                (OUT, out_base),
                (TID, tid as u64),
            ]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::{ExecOutcome, Interpreter, ThreadCtx};

    #[test]
    fn meabo_functional_model() {
        let n = 128; // 4 blocks
        let layout = Layout::for_core(0);
        let w = meabo(n, layout);
        let mut mem = FlatMem::new(0, crate::layout::mem_size(1));
        w.init_mem(&mut mem);
        let nthreads = 2;
        let mut sums = Vec::new();
        for t in 0..nthreads {
            let mut ctx = ThreadCtx::new();
            for (r, v) in w.thread_ctx(t, nthreads) {
                ctx.set(r, v);
            }
            let out = Interpreter::new(w.program(), &mut mem).run(&mut ctx, 10_000_000);
            assert!(matches!(out, ExecOutcome::Halted { .. }));
            sums.push(ctx.get(ACC));
        }

        // Scalar model.
        let a: Vec<u64> = data::values(n as usize, 40)
            .into_iter()
            .map(|v| v & 0xFFFF_FFFF)
            .collect();
        let ridx: Vec<u64> = data::uniform_indices(BLOCK, n as usize, 41)
            .into_iter()
            .enumerate()
            .map(|(i, r)| (i as u64 / BLOCK) * BLOCK + r)
            .collect();
        let blocks = n / BLOCK;
        let mut c = vec![0u64; n as usize];
        // All phase-1 writes across threads (disjoint blocks).
        for b in 0..blocks {
            for j in b * BLOCK..(b + 1) * BLOCK {
                let t0 = a[j as usize];
                c[j as usize] = ((t0.wrapping_mul(3) ^ t0) >> 1).wrapping_add(j);
            }
        }
        for t in 0..nthreads as u64 {
            let mut sum = 0u64;
            let mut b = t;
            while b < blocks {
                for j in b * BLOCK..(b + 1) * BLOCK {
                    sum = sum.wrapping_add(c[ridx[j as usize] as usize]);
                }
                b += nthreads as u64;
            }
            assert_eq!(sums[t as usize], sum, "thread {t}");
        }
    }

    #[test]
    fn meabo_is_nested() {
        let w = meabo(128, Layout::for_core(0));
        let u = w.register_usage();
        assert_eq!(u.max_depth, 2);
        assert_eq!(u.loops.len(), 3, "outer + two phase loops");
    }
}
