//! Dependent-access kernels: pointer chasing (PrIM-style linked traversal)
//! and GUPS-style random update.

use super::{base_ctx, regs::*};
use crate::data;
use crate::layout::Layout;
use crate::workload::Workload;
use virec_isa::{Asm, Cond, FlatMem};

/// Linked-list traversal: `cur = next[cur]`, `n` hops per thread. Every
/// load depends on the previous one — zero memory-level parallelism within
/// a thread, the case where multithreading is the *only* latency-hiding
/// lever.
pub fn pointer_chase(n: u64, layout: Layout) -> Workload {
    let next_base = layout.data_base;
    let out_base = next_base + n * 8;

    let mut asm = Asm::new("pointer_chase");
    // ACC = current node, I = remaining hops (counts down from n/stride).
    asm.label("loop");
    asm.ldr_idx(ACC, BASE_A, ACC, 3); // cur = next[cur]
    asm.subi(I, I, 1);
    asm.cbnz(I, "loop");
    asm.str_idx(ACC, OUT, TID, 3); // out[tid] = final node
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "pointer_chase",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, nx) in data::cycle_permutation(n, 20).into_iter().enumerate() {
                mem.write_u64(next_base + i as u64 * 8, nx);
            }
        }),
        Box::new(move |tid, nthreads| {
            // Each thread starts at a different node and walks n/T hops.
            let hops = (n / nthreads as u64).max(1);
            vec![
                (ACC, (tid as u64 * (n / nthreads.max(1) as u64)) % n),
                (I, hops),
                (BASE_A, next_base),
                (OUT, out_base),
                (TID, tid as u64),
            ]
        }),
    )
}

/// GUPS-style random update: `t[j] = t[j] ^ f(i)` with `j` drawn from a
/// per-thread random stream. Tables are privatized per thread (as in
/// standard parallel GUPS implementations) so results are deterministic.
pub fn update(n: u64, layout: Layout) -> Workload {
    // Table of n entries per thread (privatized), preceded by the index
    // stream shared by all threads.
    let idx_base = layout.data_base;
    let table_base = idx_base + n * 8;

    let mut asm = Asm::new("update");
    asm.label("loop");
    asm.ldr_idx(T0, BASE_B, I, 3); // t0 = idx[i]
    asm.ldr_idx(T1, BASE_A, T0, 3); // t1 = table[t0]
    asm.eor(T1, T1, T0); // t1 ^= t0
    asm.str_idx(T1, BASE_A, T0, 3); // table[t0] = t1
    asm.add(I, I, STRIDE);
    asm.cmp(I, BOUND);
    asm.bcc(Cond::Lt, "loop");
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "update",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, ix) in data::uniform_indices(n, n as usize, 21)
                .into_iter()
                .enumerate()
            {
                mem.write_u64(idx_base + i as u64 * 8, ix);
            }
            // Tables start zeroed (FlatMem default) — one per thread is
            // laid out by the context's BASE_A below; nothing to write.
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, table_base + tid as u64 * n * 8)); // private table
            c.push((BASE_B, idx_base));
            c
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::{ExecOutcome, Interpreter, ThreadCtx};

    fn run_functional(w: &Workload, nthreads: usize) -> FlatMem {
        let mut mem = FlatMem::new(0, crate::layout::mem_size(1));
        w.init_mem(&mut mem);
        for t in 0..nthreads {
            let mut ctx = ThreadCtx::new();
            for (r, v) in w.thread_ctx(t, nthreads) {
                ctx.set(r, v);
            }
            let out = Interpreter::new(w.program(), &mut mem).run(&mut ctx, 10_000_000);
            assert!(matches!(out, ExecOutcome::Halted { .. }));
        }
        mem
    }

    #[test]
    fn chase_follows_permutation() {
        let n = 128;
        let layout = Layout::for_core(0);
        let mem = run_functional(&pointer_chase(n, layout), 2);
        let next = data::cycle_permutation(n, 20);
        for t in 0..2u64 {
            let mut cur = t * (n / 2) % n;
            for _ in 0..n / 2 {
                cur = next[cur as usize];
            }
            let got = mem.read_u64(layout.data_base + n * 8 + t * 8);
            assert_eq!(got, cur, "thread {t}");
        }
    }

    #[test]
    fn update_xors_privatized_tables() {
        let n = 96;
        let layout = Layout::for_core(0);
        let mem = run_functional(&update(n, layout), 3);
        let idx = data::uniform_indices(n, n as usize, 21);
        for t in 0..3usize {
            let mut table = vec![0u64; n as usize];
            for i in (t..n as usize).step_by(3) {
                let j = idx[i] as usize;
                table[j] ^= idx[i];
            }
            let tb = layout.data_base + n * 8 + t as u64 * n * 8;
            for (j, expect) in table.iter().enumerate() {
                assert_eq!(mem.read_u64(tb + j as u64 * 8), *expect, "t{t} slot {j}");
            }
        }
    }

    #[test]
    fn chase_uses_tiny_context() {
        let w = pointer_chase(64, Layout::for_core(0));
        assert!(w.active_context_size() <= 4, "chase inner loop is 3 regs");
    }
}
