//! Spatter-style gather/scatter kernels \[36\] — the paper's headline
//! workloads (Figures 1, 5, 10, 11 all use *gather*).

use super::{base_ctx, regs::*};
use crate::data;
use crate::layout::Layout;
use crate::workload::Workload;
use virec_isa::{Asm, Cond, FlatMem};

/// Spatter index-pattern families \[36\]. The suite's default `gather` uses
/// `UniformRandom`; the other patterns reproduce Spatter's stride and
/// "mostly-stride-1" traces for locality studies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpatterPattern {
    /// `idx[i] = (i * stride) % n` — fixed-stride sweeps (stride in
    /// elements; 8 elements = one cache line).
    UniformStride(u64),
    /// Mostly stride-1: runs of `run` consecutive indices separated by
    /// jumps of `gap` elements (the FEM-style Spatter patterns).
    Ms1 {
        /// Consecutive elements per run.
        run: u64,
        /// Elements skipped between runs.
        gap: u64,
    },
    /// Uniformly random indices (the default low-locality pattern).
    UniformRandom,
}

impl SpatterPattern {
    /// Generates the index stream for `count` accesses over `0..n`.
    pub fn indices(self, n: u64, count: usize, salt: u64) -> Vec<u64> {
        match self {
            SpatterPattern::UniformStride(stride) => (0..count as u64)
                .map(|i| (i.wrapping_mul(stride)) % n)
                .collect(),
            SpatterPattern::Ms1 { run, gap } => {
                let run = run.max(1);
                let mut out = Vec::with_capacity(count);
                let mut base = 0u64;
                let mut k = 0u64;
                for _ in 0..count {
                    out.push((base + k) % n);
                    k += 1;
                    if k == run {
                        k = 0;
                        base = (base + run + gap) % n;
                    }
                }
                out
            }
            SpatterPattern::UniformRandom => data::uniform_indices(n, count, salt),
        }
    }
}

/// `sum += data[idx[i]]` with a configurable Spatter index pattern.
pub fn gather_with_pattern(n: u64, layout: Layout, pattern: SpatterPattern) -> Workload {
    let data_base = layout.data_base;
    let idx_base = data_base + n * 8;
    let out_base = idx_base + n * 8;

    let mut a = Asm::new("gather");
    a.label("loop");
    a.ldr_idx(T0, BASE_B, I, 3);
    a.ldr_idx(T1, BASE_A, T0, 3);
    a.add(ACC, ACC, T1);
    a.add(I, I, STRIDE);
    a.cmp(I, BOUND);
    a.bcc(Cond::Lt, "loop");
    a.str_idx(ACC, OUT, TID, 3);
    a.halt();
    let program = a.assemble();

    Workload::from_parts(
        "gather",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 1).into_iter().enumerate() {
                mem.write_u64(data_base + i as u64 * 8, v);
            }
            for (i, ix) in pattern.indices(n, n as usize, 2).into_iter().enumerate() {
                mem.write_u64(idx_base + i as u64 * 8, ix);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, data_base));
            c.push((BASE_B, idx_base));
            c.push((OUT, out_base));
            c
        }),
    )
}

/// `sum += data[idx[i]]` with uniformly random indices — streaming
/// indirect reads, the canonical low-locality near-memory kernel.
pub fn gather(n: u64, layout: Layout) -> Workload {
    let data_base = layout.data_base;
    let idx_base = data_base + n * 8;
    let out_base = idx_base + n * 8;

    let mut a = Asm::new("gather");
    a.label("loop");
    a.ldr_idx(T0, BASE_B, I, 3); // t0 = idx[i]
    a.ldr_idx(T1, BASE_A, T0, 3); // t1 = data[t0]
    a.add(ACC, ACC, T1);
    a.add(I, I, STRIDE);
    a.cmp(I, BOUND);
    a.bcc(Cond::Lt, "loop");
    a.str_idx(ACC, OUT, TID, 3); // out[tid] = sum
    a.halt();
    let program = a.assemble();

    Workload::from_parts(
        "gather",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 1).into_iter().enumerate() {
                mem.write_u64(data_base + i as u64 * 8, v);
            }
            for (i, ix) in data::uniform_indices(n, n as usize, 2)
                .into_iter()
                .enumerate()
            {
                mem.write_u64(idx_base + i as u64 * 8, ix);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, data_base));
            c.push((BASE_B, idx_base));
            c.push((OUT, out_base));
            c
        }),
    )
}

/// `out[idx[i]] = vals[i]` over a per-thread permutation partition —
/// streaming indirect writes.
pub fn scatter(n: u64, layout: Layout) -> Workload {
    let vals_base = layout.data_base;
    let idx_base = vals_base + n * 8;
    let out_base = idx_base + n * 8;

    let mut a = Asm::new("scatter");
    a.label("loop");
    a.ldr_idx(T0, BASE_B, I, 3); // t0 = idx[i]
    a.ldr_idx(T1, BASE_A, I, 3); // t1 = vals[i]
    a.str_idx(T1, OUT, T0, 3); // out[t0] = t1
    a.add(I, I, STRIDE);
    a.cmp(I, BOUND);
    a.bcc(Cond::Lt, "loop");
    a.halt();
    let program = a.assemble();

    Workload::from_parts(
        "scatter",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 3).into_iter().enumerate() {
                mem.write_u64(vals_base + i as u64 * 8, v);
            }
            // A permutation keeps scatter targets disjoint across threads,
            // so timing-dependent store interleaving cannot change results.
            for (i, ix) in data::cycle_permutation(n, 4).into_iter().enumerate() {
                mem.write_u64(idx_base + i as u64 * 8, ix);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, vals_base));
            c.push((BASE_B, idx_base));
            c.push((OUT, out_base));
            c
        }),
    )
}

/// `y[pidx[i]] = x[gidx[i]]` — simultaneous gather and scatter.
pub fn gather_scatter(n: u64, layout: Layout) -> Workload {
    let x_base = layout.data_base;
    let gidx_base = x_base + n * 8;
    let pidx_base = gidx_base + n * 8;
    let y_base = pidx_base + n * 8;

    let mut a = Asm::new("gather_scatter");
    a.label("loop");
    a.ldr_idx(T0, BASE_B, I, 3); // t0 = gidx[i]
    a.ldr_idx(T0, BASE_A, T0, 3); // t0 = x[t0]
    a.ldr_idx(T1, E0, I, 3); // t1 = pidx[i]
    a.str_idx(T0, OUT, T1, 3); // y[t1] = t0
    a.add(I, I, STRIDE);
    a.cmp(I, BOUND);
    a.bcc(Cond::Lt, "loop");
    a.halt();
    let program = a.assemble();

    Workload::from_parts(
        "gather_scatter",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 5).into_iter().enumerate() {
                mem.write_u64(x_base + i as u64 * 8, v);
            }
            for (i, ix) in data::uniform_indices(n, n as usize, 6)
                .into_iter()
                .enumerate()
            {
                mem.write_u64(gidx_base + i as u64 * 8, ix);
            }
            for (i, ix) in data::cycle_permutation(n, 7).into_iter().enumerate() {
                mem.write_u64(pidx_base + i as u64 * 8, ix);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, x_base));
            c.push((BASE_B, gidx_base));
            c.push((E0, pidx_base));
            c.push((OUT, y_base));
            c
        }),
    )
}

/// Elements touched per stride jump (16 × 8 B = two cache lines, so every
/// access opens a new line).
const STRIDE_ELEMS: u64 = 16;

/// `sum += a[i * 16]` — strided reads that skip cache lines.
pub fn stride(n: u64, layout: Layout) -> Workload {
    let a_base = layout.data_base;
    let out_base = a_base + n * STRIDE_ELEMS * 8;

    let mut a = Asm::new("stride");
    // i counts logical elements; address = base + (i*16)*8.
    a.label("loop");
    a.lsli(T0, I, 4); // t0 = i * 16
    a.ldr_idx(T1, BASE_A, T0, 3); // t1 = a[t0]
    a.add(ACC, ACC, T1);
    a.add(I, I, STRIDE);
    a.cmp(I, BOUND);
    a.bcc(Cond::Lt, "loop");
    a.str_idx(ACC, OUT, TID, 3);
    a.halt();
    let program = a.assemble();

    Workload::from_parts(
        "stride",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            // Only the strided slots matter; fill them.
            for i in 0..n {
                mem.write_u64(a_base + i * STRIDE_ELEMS * 8, i.wrapping_mul(31) & 0xFFFF);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, a_base));
            c.push((OUT, out_base));
            c
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::{ExecOutcome, Interpreter, ThreadCtx};

    fn run_functional(w: &Workload, nthreads: usize) -> (FlatMem, Vec<ThreadCtx>) {
        let mut mem = FlatMem::new(0, crate::layout::mem_size(1));
        w.init_mem(&mut mem);
        let mut ctxs = Vec::new();
        for t in 0..nthreads {
            let mut ctx = ThreadCtx::new();
            for (r, v) in w.thread_ctx(t, nthreads) {
                ctx.set(r, v);
            }
            let out = Interpreter::new(w.program(), &mut mem).run(&mut ctx, 10_000_000);
            assert!(matches!(out, ExecOutcome::Halted { .. }), "{}", w.name);
            ctxs.push(ctx);
        }
        (mem, ctxs)
    }

    #[test]
    fn gather_sums_match_scalar_model() {
        let n = 256;
        let layout = Layout::for_core(0);
        let w = gather(n, layout);
        let (mem, _) = run_functional(&w, 4);
        // Independent scalar model.
        let data: Vec<u64> = data::values(n as usize, 1);
        let idx = data::uniform_indices(n, n as usize, 2);
        for t in 0..4usize {
            let expect: u64 = (t..n as usize)
                .step_by(4)
                .map(|i| data[idx[i] as usize])
                .fold(0u64, |a, b| a.wrapping_add(b));
            let out = mem.read_u64(layout.data_base + 2 * n * 8 + t as u64 * 8);
            assert_eq!(out, expect, "thread {t}");
        }
    }

    #[test]
    fn scatter_places_all_values() {
        let n = 128;
        let layout = Layout::for_core(0);
        let w = scatter(n, layout);
        let (mem, _) = run_functional(&w, 4);
        let vals = data::values(n as usize, 3);
        let idx = data::cycle_permutation(n, 4);
        for i in 0..n as usize {
            let got = mem.read_u64(layout.data_base + 2 * n * 8 + idx[i] * 8);
            assert_eq!(got, vals[i], "element {i}");
        }
    }

    #[test]
    fn gather_scatter_functional() {
        let n = 128;
        let layout = Layout::for_core(0);
        let w = gather_scatter(n, layout);
        let (mem, _) = run_functional(&w, 2);
        let x = data::values(n as usize, 5);
        let g = data::uniform_indices(n, n as usize, 6);
        let p = data::cycle_permutation(n, 7);
        for i in 0..n as usize {
            let got = mem.read_u64(layout.data_base + 3 * n * 8 + p[i] * 8);
            assert_eq!(got, x[g[i] as usize], "element {i}");
        }
    }

    #[test]
    fn stride_covers_partition() {
        let n = 64;
        let layout = Layout::for_core(0);
        let w = stride(n, layout);
        let (mem, _) = run_functional(&w, 2);
        for t in 0..2u64 {
            let expect: u64 = (t..n).step_by(2).map(|i| i.wrapping_mul(31) & 0xFFFF).sum();
            let got = mem.read_u64(layout.data_base + n * STRIDE_ELEMS * 8 + t * 8);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn gather_active_context_is_about_eight() {
        let w = gather(64, Layout::for_core(0));
        let ctx = w.active_context_size();
        assert!((7..=9).contains(&ctx), "gather active ctx = {ctx}");
    }
}

#[cfg(test)]
mod pattern_tests {
    use super::*;

    #[test]
    fn uniform_stride_wraps() {
        let ix = SpatterPattern::UniformStride(3).indices(10, 7, 0);
        assert_eq!(ix, vec![0, 3, 6, 9, 2, 5, 8]);
    }

    #[test]
    fn ms1_runs_and_gaps() {
        let ix = SpatterPattern::Ms1 { run: 3, gap: 2 }.indices(100, 8, 0);
        // runs of 3 consecutive, then skip 2: 0,1,2, 5,6,7, 10,11
        assert_eq!(ix, vec![0, 1, 2, 5, 6, 7, 10, 11]);
    }

    #[test]
    fn random_pattern_matches_default_gather() {
        let a = SpatterPattern::UniformRandom.indices(64, 32, 2);
        let b = data::uniform_indices(64, 32, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn all_patterns_stay_in_range() {
        for p in [
            SpatterPattern::UniformStride(7),
            SpatterPattern::Ms1 { run: 4, gap: 9 },
            SpatterPattern::UniformRandom,
        ] {
            for ix in p.indices(37, 200, 5) {
                assert!(ix < 37, "{p:?} produced {ix}");
            }
        }
    }

    #[test]
    fn patterned_gather_is_functionally_correct() {
        use virec_isa::{ExecOutcome, Interpreter, ThreadCtx};
        let n = 128;
        let layout = Layout::for_core(0);
        let pattern = SpatterPattern::Ms1 { run: 8, gap: 24 };
        let w = gather_with_pattern(n, layout, pattern);
        let mut mem = FlatMem::new(0, crate::layout::mem_size(1));
        w.init_mem(&mut mem);
        let mut ctx = ThreadCtx::new();
        for (r, v) in w.thread_ctx(0, 1) {
            ctx.set(r, v);
        }
        let out = Interpreter::new(w.program(), &mut mem).run(&mut ctx, 1_000_000);
        assert!(matches!(out, ExecOutcome::Halted { .. }));
        let vals = data::values(n as usize, 1);
        let idx = pattern.indices(n, n as usize, 2);
        let expect: u64 = idx
            .iter()
            .fold(0u64, |a, &i| a.wrapping_add(vals[i as usize]));
        let got = mem.read_u64(layout.data_base + 2 * n * 8);
        assert_eq!(got, expect);
    }
}
