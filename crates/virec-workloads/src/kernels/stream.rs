//! Streaming kernels (CORAL-2 / STREAM-style): high spatial locality,
//! regular misses at line boundaries.

use super::{base_ctx, regs::*};
use crate::data;
use crate::layout::Layout;
use crate::workload::Workload;
use virec_isa::{Asm, Cond, FlatMem};

/// STREAM triad: `a[i] = b[i] + s * c[i]`.
pub fn stream_triad(n: u64, layout: Layout) -> Workload {
    let b_base = layout.data_base;
    let c_base = b_base + n * 8;
    let a_base = c_base + n * 8;
    let scalar = 3u64;

    let mut asm = Asm::new("stream_triad");
    asm.label("loop");
    asm.ldr_idx(T0, BASE_A, I, 3); // t0 = b[i]
    asm.ldr_idx(T1, BASE_B, I, 3); // t1 = c[i]
    asm.madd(T1, T1, E0, T0); // t1 = c[i]*s + b[i]
    asm.str_idx(T1, OUT, I, 3); // a[i] = t1
    asm.add(I, I, STRIDE);
    asm.cmp(I, BOUND);
    asm.bcc(Cond::Lt, "loop");
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "stream_triad",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 10).into_iter().enumerate() {
                mem.write_u64(b_base + i as u64 * 8, v & 0xFFFF_FFFF);
            }
            for (i, v) in data::values(n as usize, 11).into_iter().enumerate() {
                mem.write_u64(c_base + i as u64 * 8, v & 0xFFFF_FFFF);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, b_base));
            c.push((BASE_B, c_base));
            c.push((OUT, a_base));
            c.push((E0, scalar));
            c
        }),
    )
}

/// DAXPY: `y[i] = y[i] + a * x[i]`.
pub fn daxpy(n: u64, layout: Layout) -> Workload {
    let x_base = layout.data_base;
    let y_base = x_base + n * 8;
    let scalar = 7u64;

    let mut asm = Asm::new("daxpy");
    asm.label("loop");
    asm.ldr_idx(T0, BASE_A, I, 3); // t0 = x[i]
    asm.ldr_idx(T1, OUT, I, 3); // t1 = y[i]
    asm.madd(T1, T0, E0, T1); // t1 = x[i]*a + y[i]
    asm.str_idx(T1, OUT, I, 3);
    asm.add(I, I, STRIDE);
    asm.cmp(I, BOUND);
    asm.bcc(Cond::Lt, "loop");
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "daxpy",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 12).into_iter().enumerate() {
                mem.write_u64(x_base + i as u64 * 8, v & 0xFFFF);
            }
            for (i, v) in data::values(n as usize, 13).into_iter().enumerate() {
                mem.write_u64(y_base + i as u64 * 8, v & 0xFFFF);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, x_base));
            c.push((OUT, y_base));
            c.push((E0, scalar));
            c
        }),
    )
}

/// Sequential reduction: `sum += a[i]` — the high-locality end of the suite.
pub fn reduction(n: u64, layout: Layout) -> Workload {
    let a_base = layout.data_base;
    let out_base = a_base + n * 8;

    let mut asm = Asm::new("reduction");
    asm.label("loop");
    asm.ldr_idx(T0, BASE_A, I, 3);
    asm.add(ACC, ACC, T0);
    asm.add(I, I, STRIDE);
    asm.cmp(I, BOUND);
    asm.bcc(Cond::Lt, "loop");
    asm.str_idx(ACC, OUT, TID, 3);
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "reduction",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 14).into_iter().enumerate() {
                mem.write_u64(a_base + i as u64 * 8, v & 0xFF_FFFF);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, a_base));
            c.push((OUT, out_base));
            c
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::{ExecOutcome, Interpreter, ThreadCtx};

    fn run_functional(w: &Workload, nthreads: usize) -> FlatMem {
        let mut mem = FlatMem::new(0, crate::layout::mem_size(1));
        w.init_mem(&mut mem);
        for t in 0..nthreads {
            let mut ctx = ThreadCtx::new();
            for (r, v) in w.thread_ctx(t, nthreads) {
                ctx.set(r, v);
            }
            let out = Interpreter::new(w.program(), &mut mem).run(&mut ctx, 10_000_000);
            assert!(matches!(out, ExecOutcome::Halted { .. }));
        }
        mem
    }

    #[test]
    fn triad_computes_b_plus_sc() {
        let n = 128;
        let layout = Layout::for_core(0);
        let mem = run_functional(&stream_triad(n, layout), 4);
        let b: Vec<u64> = data::values(n as usize, 10)
            .into_iter()
            .map(|v| v & 0xFFFF_FFFF)
            .collect();
        let c: Vec<u64> = data::values(n as usize, 11)
            .into_iter()
            .map(|v| v & 0xFFFF_FFFF)
            .collect();
        for i in 0..n as usize {
            let got = mem.read_u64(layout.data_base + 2 * n * 8 + i as u64 * 8);
            assert_eq!(got, c[i].wrapping_mul(3).wrapping_add(b[i]), "i={i}");
        }
    }

    #[test]
    fn daxpy_updates_in_place() {
        let n = 64;
        let layout = Layout::for_core(0);
        let mem = run_functional(&daxpy(n, layout), 2);
        let x: Vec<u64> = data::values(n as usize, 12)
            .into_iter()
            .map(|v| v & 0xFFFF)
            .collect();
        let y: Vec<u64> = data::values(n as usize, 13)
            .into_iter()
            .map(|v| v & 0xFFFF)
            .collect();
        for i in 0..n as usize {
            let got = mem.read_u64(layout.data_base + n * 8 + i as u64 * 8);
            assert_eq!(got, x[i] * 7 + y[i]);
        }
    }

    #[test]
    fn reduction_sums_partition() {
        let n = 100;
        let layout = Layout::for_core(0);
        let mem = run_functional(&reduction(n, layout), 3);
        let a: Vec<u64> = data::values(n as usize, 14)
            .into_iter()
            .map(|v| v & 0xFF_FFFF)
            .collect();
        for t in 0..3usize {
            let expect: u64 = (t..n as usize).step_by(3).map(|i| a[i]).sum();
            let got = mem.read_u64(layout.data_base + n * 8 + t as u64 * 8);
            assert_eq!(got, expect, "thread {t}");
        }
    }
}
