//! Sparse/irregular kernels: histogram (PrIM-style) and CSR SpMV
//! (CORAL-2-style). SpMV's nested loops exercise the outer-loop register
//! behaviour of §4.2.

use super::{base_ctx, regs::*};
use crate::data;
use crate::layout::Layout;
use crate::workload::Workload;
use virec_isa::{Asm, Cond, FlatMem};

/// Number of histogram buckets (fits in two cache lines per thread).
const BUCKETS: u64 = 256;

/// Histogram over the low byte of each value, with per-thread private
/// histograms (standard privatization, keeps the kernel race-free).
pub fn histogram(n: u64, layout: Layout) -> Workload {
    let data_base = layout.data_base;
    let hist_base = data_base + n * 8;

    let mut asm = Asm::new("histogram");
    asm.label("loop");
    asm.ldr_idx(T0, BASE_A, I, 3); // t0 = data[i]
    asm.andi(T0, T0, (BUCKETS - 1) as i64); // bucket
    asm.ldr_idx(T1, OUT, T0, 3); // t1 = hist[bucket]
    asm.addi(T1, T1, 1);
    asm.str_idx(T1, OUT, T0, 3); // hist[bucket] = t1
    asm.add(I, I, STRIDE);
    asm.cmp(I, BOUND);
    asm.bcc(Cond::Lt, "loop");
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "histogram",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 30).into_iter().enumerate() {
                mem.write_u64(data_base + i as u64 * 8, v);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, data_base));
            c.push((OUT, hist_base + tid as u64 * BUCKETS * 8)); // private
            c
        }),
    )
}

/// Nonzeros per row of the synthetic CSR matrix.
const NNZ_PER_ROW: u64 = 8;

/// CSR sparse matrix-vector product: `y[r] = Σ val[k] * x[col[k]]`.
///
/// The row loop is the outer loop; the nonzero loop is the innermost. Row
/// pointers and the output base live in outer-loop registers with long
/// reuse distances — the registers §4.2's compiler reduction targets.
pub fn spmv(n: u64, layout: Layout) -> Workload {
    let rows = n;
    let cols = n;
    // Layout: row_ptr[rows+1] | col_idx[...] | val[...] | x[cols] | y[rows]
    let rp_base = layout.data_base;
    let (_, col_idx) = data::csr_matrix(rows, cols, NNZ_PER_ROW, 31);
    let nnz = col_idx.len() as u64;
    let ci_base = rp_base + (rows + 1) * 8;
    let val_base = ci_base + nnz * 8;
    let x_base = val_base + nnz * 8;
    let y_base = x_base + cols * 8;

    // Outer loop: I = row (starts at tid, strides by nthreads). Inner loop
    // walks nonzeros k in row_ptr[r]..row_ptr[r+1]. The x base (E3) and
    // value base (E2) stay live across both loops; T1 is recycled as the
    // row_ptr[r+1] bound.
    let mut asm = Asm::new("spmv");
    asm.label("rows");
    asm.ldr_idx(T0, BASE_A, I, 3); // k = row_ptr[r]
    asm.addi(T1, I, 1);
    asm.ldr_idx(T1, BASE_A, T1, 3); // kend = row_ptr[r+1]
    asm.mov_imm(ACC, 0);
    asm.cmp(T0, T1);
    asm.bcc(Cond::Ge, "row_done");
    asm.label("nnz");
    asm.ldr_idx(E0, BASE_B, T0, 3); // col = col_idx[k]
    asm.ldr_idx(E1, E2, T0, 3); // v = val[k]
    asm.ldr_idx(E0, E3, E0, 3); // xv = x[col]
    asm.madd(ACC, E0, E1, ACC);
    asm.addi(T0, T0, 1);
    asm.cmp(T0, T1);
    asm.bcc(Cond::Lt, "nnz");
    asm.label("row_done");
    asm.str_idx(ACC, OUT, I, 3);
    asm.add(I, I, STRIDE);
    asm.cmp(I, BOUND);
    asm.bcc(Cond::Lt, "rows");
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "spmv",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            let (row_ptr, col_idx) = data::csr_matrix(rows, cols, NNZ_PER_ROW, 31);
            for (i, v) in row_ptr.iter().enumerate() {
                mem.write_u64(rp_base + i as u64 * 8, *v);
            }
            for (i, c) in col_idx.iter().enumerate() {
                mem.write_u64(ci_base + i as u64 * 8, *c);
            }
            for (i, v) in data::values(col_idx.len(), 32).into_iter().enumerate() {
                mem.write_u64(val_base + i as u64 * 8, v & 0xFFFF);
            }
            for (i, v) in data::values(cols as usize, 33).into_iter().enumerate() {
                mem.write_u64(x_base + i as u64 * 8, v & 0xFFFF);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, rows);
            c.push((BASE_A, rp_base));
            c.push((BASE_B, ci_base));
            c.push((E2, val_base));
            c.push((E3, x_base));
            c.push((OUT, y_base));
            c
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::{ExecOutcome, Interpreter, ThreadCtx};

    fn run_functional(w: &Workload, nthreads: usize) -> FlatMem {
        let mut mem = FlatMem::new(0, crate::layout::mem_size(1));
        w.init_mem(&mut mem);
        for t in 0..nthreads {
            let mut ctx = ThreadCtx::new();
            for (r, v) in w.thread_ctx(t, nthreads) {
                ctx.set(r, v);
            }
            let out = Interpreter::new(w.program(), &mut mem).run(&mut ctx, 50_000_000);
            assert!(matches!(out, ExecOutcome::Halted { .. }), "{}", w.name);
        }
        mem
    }

    #[test]
    fn histogram_counts_correctly() {
        let n = 200;
        let layout = Layout::for_core(0);
        let mem = run_functional(&histogram(n, layout), 2);
        let vals = data::values(n as usize, 30);
        for t in 0..2usize {
            let mut h = vec![0u64; BUCKETS as usize];
            for i in (t..n as usize).step_by(2) {
                h[(vals[i] & (BUCKETS - 1)) as usize] += 1;
            }
            let hb = layout.data_base + n * 8 + t as u64 * BUCKETS * 8;
            for (b, expect) in h.iter().enumerate() {
                assert_eq!(mem.read_u64(hb + b as u64 * 8), *expect, "t{t} b{b}");
            }
        }
    }

    #[test]
    fn spmv_matches_reference() {
        let n = 64;
        let layout = Layout::for_core(0);
        let w = spmv(n, layout);
        let mem = run_functional(&w, 4);
        let (rp, ci) = data::csr_matrix(n, n, NNZ_PER_ROW, 31);
        let vals: Vec<u64> = data::values(ci.len(), 32)
            .into_iter()
            .map(|v| v & 0xFFFF)
            .collect();
        let x: Vec<u64> = data::values(n as usize, 33)
            .into_iter()
            .map(|v| v & 0xFFFF)
            .collect();
        let nnz = ci.len() as u64;
        let y_base = layout.data_base + (n + 1) * 8 + 2 * nnz * 8 + n * 8;
        for r in 0..n as usize {
            let mut acc = 0u64;
            for k in rp[r] as usize..rp[r + 1] as usize {
                acc = acc.wrapping_add(vals[k].wrapping_mul(x[ci[k] as usize]));
            }
            assert_eq!(mem.read_u64(y_base + r as u64 * 8), acc, "row {r}");
        }
    }

    #[test]
    fn spmv_has_nested_loops() {
        let w = spmv(32, Layout::for_core(0));
        let usage = w.register_usage();
        assert_eq!(usage.max_depth, 2, "spmv must have a 2-deep loop nest");
        assert!(
            !usage.outer_only.is_empty(),
            "spmv should have outer-loop-only registers (the §4.2 case)"
        );
    }
}
