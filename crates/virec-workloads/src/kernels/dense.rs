//! Dense/regular kernels rounding out the suite: a memcpy-style copy, a
//! 1-D 3-point stencil (CORAL-2 class), and a matrix transpose whose
//! column-order writes skip cache lines.

use super::{base_ctx, regs::*};
use crate::data;
use crate::layout::Layout;
use crate::workload::Workload;
use virec_isa::{Asm, Cond, FlatMem};

/// Streaming copy: `b[i] = a[i]` — pure bandwidth, the simplest kernel.
pub fn copy(n: u64, layout: Layout) -> Workload {
    let a_base = layout.data_base;
    let b_base = a_base + n * 8;

    let mut asm = Asm::new("copy");
    asm.label("loop");
    asm.ldr_idx(T0, BASE_A, I, 3);
    asm.str_idx(T0, OUT, I, 3);
    asm.add(I, I, STRIDE);
    asm.cmp(I, BOUND);
    asm.bcc(Cond::Lt, "loop");
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "copy",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 50).into_iter().enumerate() {
                mem.write_u64(a_base + i as u64 * 8, v);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n);
            c.push((BASE_A, a_base));
            c.push((OUT, b_base));
            c
        }),
    )
}

/// 1-D 3-point stencil: `b[i] = a[i-1] + 2*a[i] + a[i+1]` over the interior
/// points. High spatial locality with two-element reuse across iterations
/// of the *same* thread partition.
pub fn stencil3(n: u64, layout: Layout) -> Workload {
    let a_base = layout.data_base;
    let b_base = a_base + n * 8;

    let mut asm = Asm::new("stencil3");
    // I starts at tid+1 and the bound is n-1 (interior points only).
    asm.label("loop");
    asm.subi(T0, I, 1);
    asm.ldr_idx(T0, BASE_A, T0, 3); // a[i-1]
    asm.ldr_idx(T1, BASE_A, I, 3); // a[i]
    asm.add(T0, T0, T1);
    asm.add(T0, T0, T1); // + 2*a[i]
    asm.addi(T1, I, 1);
    asm.ldr_idx(T1, BASE_A, T1, 3); // a[i+1]
    asm.add(T0, T0, T1);
    asm.str_idx(T0, OUT, I, 3); // b[i]
    asm.add(I, I, STRIDE);
    asm.cmp(I, BOUND);
    asm.bcc(Cond::Lt, "loop");
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "stencil3",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(n as usize, 51).into_iter().enumerate() {
                mem.write_u64(a_base + i as u64 * 8, v & 0xFFFF_FFFF);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, n.saturating_sub(1));
            // Shift the induction variable into the interior.
            for slot in c.iter_mut() {
                if slot.0 == I {
                    slot.1 = tid as u64 + 1;
                }
            }
            c.push((BASE_A, a_base));
            c.push((OUT, b_base));
            c
        }),
    )
}

/// Matrix transpose: `b[j][i] = a[i][j]` for a `side x side` matrix
/// (`side` = largest power of two with `side² <= n`). Row-major reads,
/// column-major writes — every store opens a new line once `side >= 8`.
pub fn transpose(n: u64, layout: Layout) -> Workload {
    let side = 1u64 << (n.max(4).ilog2() / 2);
    let elems = side * side;
    let a_base = layout.data_base;
    let b_base = a_base + elems * 8;

    let mut asm = Asm::new("transpose");
    // Outer: I = row (tid-interleaved). Inner: T0 = column.
    // E0 = i*side (row offset), T1 = element, E1 = j*side + i (dst index).
    asm.label("rows");
    asm.mov_imm(E2, side as i64);
    asm.mul(E0, I, E2); // row offset
    asm.mov_imm(T0, 0);
    asm.label("cols");
    asm.add(E1, E0, T0); // src index
    asm.ldr_idx(T1, BASE_A, E1, 3); // a[i*side + j]
    asm.mul(E1, T0, E2);
    asm.add(E1, E1, I); // dst index j*side + i
    asm.str_idx(T1, OUT, E1, 3);
    asm.addi(T0, T0, 1);
    asm.cmp(T0, E2);
    asm.bcc(Cond::Lt, "cols");
    asm.add(I, I, STRIDE);
    asm.cmp(I, BOUND);
    asm.bcc(Cond::Lt, "rows");
    asm.halt();
    let program = asm.assemble();

    Workload::from_parts(
        "transpose",
        n,
        layout,
        program,
        Box::new(move |mem: &mut FlatMem| {
            for (i, v) in data::values(elems as usize, 52).into_iter().enumerate() {
                mem.write_u64(a_base + i as u64 * 8, v);
            }
        }),
        Box::new(move |tid, nthreads| {
            let mut c = base_ctx(tid, nthreads, side);
            c.push((BASE_A, a_base));
            c.push((OUT, b_base));
            c
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use virec_isa::{ExecOutcome, Interpreter, ThreadCtx};

    fn run_functional(w: &Workload, nthreads: usize) -> FlatMem {
        let mut mem = FlatMem::new(0, crate::layout::mem_size(1));
        w.init_mem(&mut mem);
        for t in 0..nthreads {
            let mut ctx = ThreadCtx::new();
            for (r, v) in w.thread_ctx(t, nthreads) {
                ctx.set(r, v);
            }
            let out = Interpreter::new(w.program(), &mut mem).run(&mut ctx, 50_000_000);
            assert!(matches!(out, ExecOutcome::Halted { .. }), "{}", w.name);
        }
        mem
    }

    #[test]
    fn copy_replicates_source() {
        let n = 128;
        let layout = Layout::for_core(0);
        let mem = run_functional(&copy(n, layout), 4);
        let src = data::values(n as usize, 50);
        for (i, expect) in src.iter().enumerate() {
            assert_eq!(
                mem.read_u64(layout.data_base + n * 8 + i as u64 * 8),
                *expect
            );
        }
    }

    #[test]
    fn stencil_matches_scalar() {
        let n = 96;
        let layout = Layout::for_core(0);
        let mem = run_functional(&stencil3(n, layout), 3);
        let a: Vec<u64> = data::values(n as usize, 51)
            .into_iter()
            .map(|v| v & 0xFFFF_FFFF)
            .collect();
        for i in 1..(n - 1) as usize {
            let expect = a[i - 1]
                .wrapping_add(a[i].wrapping_mul(2))
                .wrapping_add(a[i + 1]);
            let got = mem.read_u64(layout.data_base + n * 8 + i as u64 * 8);
            assert_eq!(got, expect, "i={i}");
        }
    }

    #[test]
    fn transpose_is_exact() {
        let n = 256; // side = 16
        let layout = Layout::for_core(0);
        let mem = run_functional(&transpose(n, layout), 4);
        let side = 16u64;
        let src = data::values((side * side) as usize, 52);
        for i in 0..side {
            for j in 0..side {
                let got = mem.read_u64(layout.data_base + side * side * 8 + (j * side + i) * 8);
                assert_eq!(got, src[(i * side + j) as usize], "({i},{j})");
            }
        }
    }

    #[test]
    fn transpose_side_is_power_of_two() {
        for n in [16u64, 100, 256, 1000, 4096] {
            let side = 1u64 << (n.max(4).ilog2() / 2);
            assert!(side * side <= n.max(4) * 2); // sanity
            assert!(side.is_power_of_two());
        }
    }
}
