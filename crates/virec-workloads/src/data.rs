//! Deterministic synthetic data generators.
//!
//! The paper runs the original benchmark inputs; we generate synthetic
//! equivalents with the same access-pattern properties (documented per
//! workload in DESIGN.md). All generators are seeded, so every simulation
//! is reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workspace-wide base seed; combined with a per-use salt.
pub const BASE_SEED: u64 = 0x5EED_0001;

/// A seeded RNG for workload `salt`.
pub fn rng(salt: u64) -> SmallRng {
    SmallRng::seed_from_u64(BASE_SEED ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Uniform random indices in `0..n` (the Spatter "uniform" pattern).
pub fn uniform_indices(n: u64, count: usize, salt: u64) -> Vec<u64> {
    let mut r = rng(salt);
    (0..count).map(|_| r.gen_range(0..n)).collect()
}

/// A random cyclic permutation of `0..n`: following `next[i]` visits every
/// element exactly once before returning — the worst case for locality and
/// the standard pointer-chase structure.
pub fn cycle_permutation(n: u64, salt: u64) -> Vec<u64> {
    let mut r = rng(salt);
    let mut order: Vec<u64> = (0..n).collect();
    // Fisher-Yates.
    for i in (1..n as usize).rev() {
        let j = r.gen_range(0..=i);
        order.swap(i, j);
    }
    // next[order[k]] = order[k+1], closing the cycle.
    let mut next = vec![0u64; n as usize];
    for k in 0..n as usize {
        next[order[k] as usize] = order[(k + 1) % n as usize];
    }
    next
}

/// Random 64-bit payload values.
pub fn values(count: usize, salt: u64) -> Vec<u64> {
    let mut r = rng(salt);
    (0..count).map(|_| r.gen::<u64>() >> 8).collect()
}

/// A synthetic CSR sparse matrix: `rows` rows with about `nnz_per_row`
/// uniformly scattered nonzero columns out of `cols`. Returns
/// `(row_ptr, col_idx)` with `row_ptr.len() == rows + 1`.
pub fn csr_matrix(rows: u64, cols: u64, nnz_per_row: u64, salt: u64) -> (Vec<u64>, Vec<u64>) {
    let mut r = rng(salt);
    let mut row_ptr = Vec::with_capacity(rows as usize + 1);
    let mut col_idx = Vec::new();
    row_ptr.push(0u64);
    for _ in 0..rows {
        let k = r.gen_range(nnz_per_row.saturating_sub(2).max(1)..=nnz_per_row + 2);
        for _ in 0..k {
            col_idx.push(r.gen_range(0..cols));
        }
        row_ptr.push(col_idx.len() as u64);
    }
    (row_ptr, col_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_indices(100, 32, 7), uniform_indices(100, 32, 7));
        assert_ne!(uniform_indices(100, 32, 7), uniform_indices(100, 32, 8));
        assert_eq!(values(16, 1), values(16, 1));
    }

    #[test]
    fn indices_in_range() {
        for i in uniform_indices(50, 1000, 3) {
            assert!(i < 50);
        }
    }

    #[test]
    fn permutation_is_single_cycle() {
        let n = 257;
        let next = cycle_permutation(n, 11);
        let mut seen = vec![false; n as usize];
        let mut cur = 0u64;
        for _ in 0..n {
            assert!(!seen[cur as usize], "revisited {cur} early");
            seen[cur as usize] = true;
            cur = next[cur as usize];
        }
        assert_eq!(cur, 0, "must close the cycle");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn csr_shape_valid() {
        let (rp, ci) = csr_matrix(64, 512, 8, 5);
        assert_eq!(rp.len(), 65);
        assert_eq!(*rp.last().unwrap() as usize, ci.len());
        for w in rp.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for &c in &ci {
            assert!(c < 512);
        }
    }
}
