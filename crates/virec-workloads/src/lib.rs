#![warn(missing_docs)]

//! # virec-workloads
//!
//! The memory-intensive kernels of the ViReC evaluation (§6), expressed in
//! the `virec-isa` mini-ISA. The paper draws on four suites used in prior
//! near-data-processor studies — Spatter (gather/scatter) \[36\], Arm Meabo
//! \[7\], CORAL-2 \[1\] and PrIM \[28\]; this crate implements representative
//! kernels from each access-pattern class:
//!
//! | kernel           | suite     | pattern                               |
//! |------------------|-----------|---------------------------------------|
//! | `gather`         | Spatter   | streaming indirect reads              |
//! | `scatter`        | Spatter   | streaming indirect writes             |
//! | `gather_scatter` | Spatter   | indirect read + indirect write        |
//! | `stride`         | Spatter   | strided reads (cache-line skipping)   |
//! | `stream_triad`   | CORAL-2   | streaming `a[i] = b[i] + s*c[i]`      |
//! | `daxpy`          | CORAL-2   | streaming `y[i] += a*x[i]`            |
//! | `reduction`      | PrIM      | sequential sum (high locality)        |
//! | `pointer_chase`  | PrIM      | dependent loads (linked traversal)    |
//! | `update`         | GUPS      | random read-modify-write              |
//! | `histogram`      | PrIM      | data-dependent RMW on small table     |
//! | `spmv`           | CORAL-2   | CSR sparse matrix-vector product      |
//! | `meabo`          | Meabo     | mixed compute + random-access phases  |
//! | `copy`           | STREAM    | pure-bandwidth streaming copy         |
//! | `stencil3`       | CORAL-2   | 1-D 3-point stencil                   |
//! | `transpose`      | CORAL-2   | row-major reads, column-major writes  |
//!
//! Every workload partitions its iteration space across hardware threads by
//! interleaving (thread `t` handles elements `t, t+T, t+2T, …`), matching
//! the task-level offload model of §6, and carries the per-thread initial
//! register context the offload mechanism ships to the reserved region.

pub mod compiled;
pub mod data;
pub mod kernels;
pub mod layout;
pub mod reduction;
pub mod workload;

pub use compiled::{gather_cc, gather_cc_ir, CompiledWorkload};
pub use layout::Layout;
pub use reduction::reduce_workload;
pub use workload::{by_name, suite, suite_names, Workload, WorkloadCtor, SUITE};
