//! The [`Workload`] abstraction: a kernel program plus its data image and
//! per-thread offloaded register contexts.

use crate::kernels;
use crate::layout::Layout;
use virec_isa::analysis::RegisterUsage;
use virec_isa::{FlatMem, Program, Reg};

/// Builds the initial memory image (data segment) of a workload.
pub type InitFn = Box<dyn Fn(&mut FlatMem) + Send + Sync>;
/// Produces the initial register context of thread `tid` of `nthreads`.
pub type CtxFn = Box<dyn Fn(usize, usize) -> Vec<(Reg, u64)> + Send + Sync>;

/// A runnable benchmark kernel.
pub struct Workload {
    /// Kernel name (stable across the repo; used in reports).
    pub name: &'static str,
    /// Problem size in elements.
    pub n: u64,
    /// The memory layout this instance was built for.
    pub layout: Layout,
    program: Program,
    init: InitFn,
    ctx: CtxFn,
}

impl Workload {
    /// Assembles a workload from its parts (used by the kernel modules).
    pub fn from_parts(
        name: &'static str,
        n: u64,
        layout: Layout,
        program: Program,
        init: InitFn,
        ctx: CtxFn,
    ) -> Workload {
        Workload {
            name,
            n,
            layout,
            program,
            init,
            ctx,
        }
    }

    /// The kernel program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Writes the workload's data segment into memory.
    pub fn init_mem(&self, mem: &mut FlatMem) {
        (self.init)(mem);
    }

    /// Initial register context for `tid` of `nthreads`.
    pub fn thread_ctx(&self, tid: usize, nthreads: usize) -> Vec<(Reg, u64)> {
        (self.ctx)(tid, nthreads)
    }

    /// Static register-pressure analysis of the kernel.
    pub fn register_usage(&self) -> RegisterUsage {
        RegisterUsage::analyze(&self.program)
    }

    /// Size of the active (innermost-loop) register context — what ViReC's
    /// physical RF is provisioned against (paper: 5–10 registers).
    pub fn active_context_size(&self) -> usize {
        self.register_usage().active_context_size()
    }
}

/// A workload constructor: `(problem size, layout) -> Workload`.
pub type WorkloadCtor = fn(u64, Layout) -> Workload;

/// The full evaluation suite, in a stable order.
pub const SUITE: &[(&str, WorkloadCtor)] = &[
    ("gather", kernels::spatter::gather),
    ("scatter", kernels::spatter::scatter),
    ("gather_scatter", kernels::spatter::gather_scatter),
    ("stride", kernels::spatter::stride),
    ("stream_triad", kernels::stream::stream_triad),
    ("daxpy", kernels::stream::daxpy),
    ("reduction", kernels::stream::reduction),
    ("pointer_chase", kernels::pointer::pointer_chase),
    ("update", kernels::pointer::update),
    ("histogram", kernels::sparse::histogram),
    ("spmv", kernels::sparse::spmv),
    ("meabo", kernels::meabo::meabo),
    ("copy", kernels::dense::copy),
    ("stencil3", kernels::dense::stencil3),
    ("transpose", kernels::dense::transpose),
];

/// Instantiates the whole suite at problem size `n`.
///
/// ```
/// use virec_workloads::{suite, Layout};
/// let all = suite(256, Layout::for_core(0));
/// assert_eq!(all.len(), 15);
/// // Every kernel's active context is small (the paper's Figure 2).
/// assert!(all.iter().all(|w| w.active_context_size() <= 14));
/// ```
pub fn suite(n: u64, layout: Layout) -> Vec<Workload> {
    SUITE.iter().map(|(_, ctor)| ctor(n, layout)).collect()
}

/// Names of all suite workloads, in suite order.
pub fn suite_names() -> Vec<&'static str> {
    SUITE.iter().map(|(n, _)| *n).collect()
}

/// Builds one workload by name.
pub fn by_name(name: &str, n: u64, layout: Layout) -> Option<Workload> {
    SUITE
        .iter()
        .find(|(wn, _)| *wn == name)
        .map(|(_, ctor)| ctor(n, layout))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fifteen_unique_kernels() {
        let names = suite_names();
        assert_eq!(names.len(), 15);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
    }

    #[test]
    fn by_name_roundtrip() {
        let l = Layout::for_core(0);
        for name in suite_names() {
            let w = by_name(name, 64, l).expect(name);
            assert_eq!(w.name, name);
            assert!(!w.program().is_empty());
        }
        assert!(by_name("nonsense", 64, l).is_none());
    }

    #[test]
    fn active_contexts_are_small() {
        // The paper's premise (Figure 2): memory-intensive kernels use a
        // small fraction of the architectural context in their inner loops.
        let l = Layout::for_core(0);
        for w in suite(256, l) {
            let ctx = w.active_context_size();
            assert!(
                (3..=14).contains(&ctx),
                "{}: active context {} outside the expected 3..=14",
                w.name,
                ctx
            );
        }
    }
}
