//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors the subset of the criterion 0.5 API its benches use:
//! [`Criterion::benchmark_group`], [`Criterion::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark runs its routine
//! `sample_size` times and reports mean wall-clock time per iteration on
//! stdout. There is no statistical analysis, warm-up, or HTML report — the
//! stub exists so `cargo bench` keeps *executing* every experiment pipeline,
//! not to produce publication-grade timings.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: Some(name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameter-only id (the group name supplies the prefix).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => format!("{n}/{p}"),
            (Some(n), None) => n.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name: Some(name),
            parameter: None,
        }
    }
}

/// Times a single benchmark routine.
pub struct Bencher {
    samples: u64,
    /// (total elapsed nanoseconds, total iterations) accumulated by `iter`.
    measured: Option<(u128, u64)>,
}

impl Bencher {
    /// Runs `routine` `sample_size` times and records mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.measured = Some((start.elapsed().as_nanos(), self.samples));
    }
}

fn run_one(label: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        measured: None,
    };
    f(&mut b);
    match b.measured {
        Some((nanos, iters)) if iters > 0 => {
            let per = nanos / iters as u128;
            println!("bench {label:<40} {per:>12} ns/iter ({iters} iters)");
        }
        _ => println!("bench {label:<40} (no measurement)"),
    }
}

/// Top-level benchmark driver (stub: holds the default sample count).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n as u64;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().render(), self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_labels() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("plain", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 3);
        g.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
