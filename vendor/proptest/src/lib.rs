//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors the *subset* of the proptest 1.x API its tests use:
//! the [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`], [`any`],
//! [`strategy::Just`], [`strategy::Strategy`] with `prop_map`/`boxed`,
//! [`collection::vec`], and [`test_runner::ProptestConfig`] (only `cases`
//! is honoured).
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs left
//!   to the assertion message; it is not minimised.
//! * **Deterministic.** Case generation is seeded from the test's name, so
//!   a failure reproduces on every run (there is no persistence file).
//! * **Compile-loud.** Anything outside the vendored subset is absent, so
//!   new reliance on upstream features fails at compile time rather than
//!   silently changing test semantics.

/// Deterministic RNG + runner configuration.
pub mod test_runner {
    /// xorshift64* generator driving all case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a nonzero seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed.max(1) }
        }

        /// Returns the next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Runner configuration (subset: only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; ignored (the stub never
        /// shrinks).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        /// Convenience constructor mirroring upstream.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// Executes a property's cases with a name-seeded deterministic RNG.
    pub struct TestRunner {
        cases: u32,
        rng: TestRng,
    }

    impl TestRunner {
        /// Builds a runner; the RNG seed is an FNV hash of `name` so every
        /// property gets a distinct but reproducible stream.
        pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner {
                cases: config.cases,
                rng: TestRng::new(h | 1),
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The shared generation stream.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for any value of an [`Arbitrary`](crate::arbitrary::Arbitrary)
    /// type; see [`any`](crate::arbitrary::any).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// The [`Arbitrary`](arbitrary::Arbitrary) trait and [`any`](arbitrary::any).
pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (subset: [`vec`](collection::vec)).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`] — a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Defines property tests. Mirrors upstream's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u8..4, ys in prop::collection::vec(any::<u64>(), 1..9)) {
///         prop_assert!(ys.len() >= 1);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __runner =
                $crate::test_runner::TestRunner::new(__config, stringify!($name));
            let __strats = ($($strat,)+);
            for __case in 0..__runner.cases() {
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = __strats;
                    ($($crate::strategy::Strategy::generate($arg, __runner.rng()),)+)
                };
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name (the stub does not shrink, so
/// failures panic directly with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Everything a property-test file needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u8),
        B(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 0u8..4, pair in (0u16..10, 10u16..20)) {
            let (lo, hi) = pair;
            prop_assert!(x < 4);
            prop_assert!(lo < hi, "{lo} vs {hi}");
        }

        #[test]
        fn oneof_maps_and_vecs(
            picks in prop::collection::vec(
                prop_oneof![
                    (0u8..4).prop_map(Pick::A),
                    (4u8..8).prop_map(Pick::B),
                ],
                1..20
            ),
            flag in any::<bool>(),
            word in any::<u64>(),
        ) {
            prop_assert!(!picks.is_empty() && picks.len() < 20);
            for p in &picks {
                match p {
                    Pick::A(v) => prop_assert!(*v < 4),
                    Pick::B(v) => prop_assert!((4..8).contains(v)),
                }
            }
            let _ = (flag, word);
        }

        #[test]
        fn just_clones(v in Just(vec![1u8, 2, 3]), n in 1usize..=3) {
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let draw = |name: &str| {
            let mut r = TestRunner::new(ProptestConfig::default(), name);
            (0u64..1000).generate(r.rng())
        };
        assert_eq!(draw("same"), draw("same"));
    }
}
