//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors the *subset* of the `rand` 0.8 API it actually uses
//! (`SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`).
//! The generator is splitmix64 — deterministic, seedable, and of more than
//! sufficient quality for synthetic workload data. It is **not** the real
//! `rand` crate: sequences differ from upstream `SmallRng`, and anything
//! outside this subset is intentionally absent so accidental reliance on the
//! stub fails loudly at compile time.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard (uniform) distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Distributions that can produce a `T` (subset: `Standard` only).
pub trait Distribution<T> {
    /// Draws one sample from the distribution using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The uniform-over-all-values distribution used by [`Rng::gen`].
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64).
    ///
    /// Unlike upstream's `SmallRng` this is guaranteed stable across
    /// versions of this stub: seeded streams never change, which the
    /// workload generators rely on for reproducible figures.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    /// Alias: the stub makes no distinction between the std and small RNGs.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let s = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&s));
        }
    }

    #[test]
    fn full_u64_range_hits_high_bits() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!((0..64).any(|_| r.gen::<u64>() > u64::MAX / 2));
    }
}
