//! Thread-scaling study on the gather kernel — the scenario that motivates
//! ViReC (paper §2 and Figure 10): with a fixed physical register budget,
//! is it better to run few threads with complete contexts or many threads
//! with partial contexts?
//!
//! ```sh
//! cargo run --release --example gather_scaling
//! ```

use virec::core::CoreConfig;
use virec::sim::report::{f3, Table};
use virec::sim::runner::{run_single, RunOptions};
use virec::workloads::{kernels, Layout};

fn main() {
    let n = 8192;
    let workload = kernels::spatter::gather(n, Layout::for_core(0));
    let active = workload.active_context_size(); // ≈8 registers for gather
    let opts = RunOptions::default();

    // A fixed budget of 32 physical registers...
    let budget = 4 * active;
    let mut t = Table::new(
        &format!("gather (n={n}): {budget}-register RF, threads vs context"),
        &[
            "threads",
            "ctx_per_thread",
            "cycles",
            "ipc",
            "rf_hit_rate",
            "switches",
        ],
    );
    for threads in [1usize, 2, 4, 6, 8, 10] {
        let r = run_single(CoreConfig::virec(threads, budget), &workload, &opts);
        t.row(vec![
            threads.to_string(),
            format!("{:.0}%", 100.0 * budget as f64 / (threads * active) as f64),
            r.cycles.to_string(),
            f3(r.ipc()),
            f3(r.stats.rf_hit_rate()),
            r.stats.context_switches.to_string(),
        ]);
    }
    t.print();

    println!(
        "Reading the table: once memory latency stops being hidden by more\n\
         threads, shrinking per-thread context costs more than the extra\n\
         threads gain — the Pareto knee the paper's Figure 10 plots."
    );
}
