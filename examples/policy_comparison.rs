//! Replacement-policy shoot-out on a register-cache under pressure —
//! reproduces the §4 story: thread-aware policies (MRT-*) beat
//! scheduling-oblivious ones, and the commit bit (LRC) refines the choice
//! within a thread.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use virec::core::{CoreConfig, PolicyKind};
use virec::sim::report::{f3, pct, Table};
use virec::sim::runner::{run_single, RunOptions};
use virec::workloads::{kernels, Layout};

fn main() {
    let n = 4096;
    let layout = Layout::for_core(0);
    let opts = RunOptions::default();

    for (wname, workload) in [
        ("gather", kernels::spatter::gather(n, layout)),
        ("meabo", kernels::meabo::meabo(n, layout)),
    ] {
        // 8 threads sharing 40% of the active context: high contention.
        let active = workload.active_context_size();
        let regs = ((8 * active) as f64 * 0.4).ceil() as usize;
        let regs = regs.max(12);

        let mut t = Table::new(
            &format!("{wname}: 8 threads, {regs} physical registers (40% context)"),
            &["policy", "cycles", "rf_hit_rate", "speedup_vs_plru"],
        );
        let mut plru_cycles = None;
        for policy in [
            PolicyKind::Plru,
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::MrtPlru,
            PolicyKind::MrtLru,
            PolicyKind::Lrc,
        ] {
            let mut cfg = CoreConfig::virec(8, regs);
            cfg.policy = policy;
            let r = run_single(cfg, &workload, &opts);
            let base = *plru_cycles.get_or_insert(r.cycles as f64);
            t.row(vec![
                policy.label().into(),
                r.cycles.to_string(),
                pct(r.stats.rf_hit_rate()),
                f3(base / r.cycles as f64),
            ]);
        }
        t.print();
    }
}
