//! Compile a kernel from the mini-IR and run it on a ViReC core — the full
//! §4.2 toolchain: the register-allocation *budget* controls how much of
//! the architectural context the kernel occupies, trading spill
//! instructions for a smaller ViReC register file.
//!
//! ```sh
//! cargo run --release --example compiled_kernel
//! ```

use virec::cc::compile;
use virec::cc::ir::{BinOp, Cmp, Function, Operand, Stmt};
use virec::core::{Core, CoreConfig, RegRegion};
use virec::isa::analysis::RegisterUsage;
use virec::isa::{FlatMem, Reg};
use virec::mem::{Fabric, FabricConfig};

const REGION_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x10_000;
const FRAME_BASE: u64 = 0x8000;
const CODE_BASE: u64 = 0x4000_0000;

/// `dot(a, b)` over an interleaved partition, written in the mini-IR.
/// Params: t0 = a, t1 = b, t2 = n, t3 = start, t4 = step.
fn dot_ir() -> Function {
    Function {
        name: "dot".into(),
        params: vec![0, 1, 2, 3, 4],
        body: vec![
            Stmt::def_const(5, 0), // acc
            Stmt::def_copy(6, 3),  // i
            Stmt::While {
                cond: (Operand::Temp(6), Cmp::Lt, Operand::Temp(2)),
                body: vec![
                    Stmt::Load {
                        dst: 7,
                        base: 0,
                        index: Operand::Temp(6),
                    },
                    Stmt::Load {
                        dst: 8,
                        base: 1,
                        index: Operand::Temp(6),
                    },
                    Stmt::def_bin(9, BinOp::Mul, Operand::Temp(7), Operand::Temp(8)),
                    Stmt::def_bin(5, BinOp::Add, Operand::Temp(5), Operand::Temp(9)),
                    Stmt::def_bin(6, BinOp::Add, Operand::Temp(6), Operand::Temp(4)),
                ],
            },
            Stmt::Return {
                value: Operand::Temp(5),
            },
        ],
    }
}

fn main() {
    let n: u64 = 2048;
    let nthreads = 4;

    for budget in [3usize, 6, 12] {
        let compiled = compile(&dot_ir(), budget).expect("kernel compiles");
        let active = RegisterUsage::analyze(&compiled.program).active_context_size();
        println!(
            "budget {budget:>2}: {} static instrs, {} temps spilled, active context {} regs",
            compiled.program.len(),
            compiled.spilled,
            active
        );

        // Offload and run on a ViReC core sized at 100% of this kernel's
        // (budget-dependent) active context.
        let mut mem = FlatMem::new(0, 0x100_000);
        for i in 0..n {
            mem.write_u64(DATA_BASE + i * 8, i % 100);
            mem.write_u64(DATA_BASE + n * 8 + i * 8, (3 * i) % 50);
        }
        let region = RegRegion::new(REGION_BASE, nthreads);
        for t in 0..nthreads {
            let args = [DATA_BASE, DATA_BASE + n * 8, n, t as u64, nthreads as u64];
            for (i, &v) in args.iter().enumerate() {
                mem.write_u64(region.reg_addr(t, Reg::new(i as u8)), v);
            }
            mem.write_u64(
                region.reg_addr(t, compiled.frame_reg),
                FRAME_BASE + t as u64 * 0x100,
            );
        }
        let cfg = CoreConfig::virec(nthreads, (active * nthreads).max(12));
        let mut core = Core::new(cfg, compiled.program.clone(), region, CODE_BASE, (0, 1));
        let mut fabric = Fabric::new(FabricConfig::default());
        let mut now = 0u64;
        while !core.done() {
            fabric.tick(now);
            core.tick(now, &mut fabric, &mut mem);
            now += 1;
        }
        core.drain(&mut mem);
        let total: u64 = (0..nthreads)
            .map(|t| core.arch_reg(t, Reg::new(0), &mem))
            .fold(0, u64::wrapping_add);
        println!(
            "           {} cycles on a {}-register ViReC core, dot = {total}",
            now,
            (active * nthreads).max(12)
        );
    }
}
