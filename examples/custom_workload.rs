//! Writing your own kernel against the public API: assemble a program with
//! labels, wrap it as a `Workload` with a data image and per-thread
//! contexts, and run it on any context engine — with golden-model
//! verification for free.
//!
//! The kernel: a blocked dot product `sum += a[i] * b[i]` where each thread
//! covers an interleaved partition.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use virec::core::CoreConfig;
use virec::isa::reg::names::*;
use virec::isa::{Asm, Cond, FlatMem};
use virec::sim::runner::{run_single, RunOptions};
use virec::workloads::{Layout, Workload};

fn dot_product(n: u64, layout: Layout) -> Workload {
    let a_base = layout.data_base;
    let b_base = a_base + n * 8;
    let out_base = b_base + n * 8;

    // x0 = acc, x1 = i, x2/x3 = array bases, x4 = n, x7 = nthreads,
    // x8 = out base, x9 = tid.
    let mut asm = Asm::new("dot_product");
    asm.label("loop");
    asm.ldr_idx(X5, X2, X1, 3); // x5 = a[i]
    asm.ldr_idx(X6, X3, X1, 3); // x6 = b[i]
    asm.madd(X0, X5, X6, X0); // acc += a[i] * b[i]
    asm.add(X1, X1, X7);
    asm.cmp(X1, X4);
    asm.bcc(Cond::Lt, "loop");
    asm.str_idx(X0, X8, X9, 3); // out[tid] = acc
    asm.halt();

    Workload::from_parts(
        "dot_product",
        n,
        layout,
        asm.assemble(),
        Box::new(move |mem: &mut FlatMem| {
            for i in 0..n {
                mem.write_u64(a_base + i * 8, i % 100);
                mem.write_u64(b_base + i * 8, (i * 3) % 50);
            }
        }),
        Box::new(move |tid, nthreads| {
            vec![
                (X0, 0),
                (X1, tid as u64),
                (X2, a_base),
                (X3, b_base),
                (X4, n),
                (X7, nthreads as u64),
                (X8, out_base),
                (X9, tid as u64),
            ]
        }),
    )
}

fn main() {
    let n = 4096;
    let layout = Layout::for_core(0);
    let workload = dot_product(n, layout);

    println!(
        "custom kernel `{}`: active context = {} registers, loop depth = {}",
        workload.name,
        workload.active_context_size(),
        workload.register_usage().max_depth
    );

    // run_single verifies against the golden interpreter by default: if the
    // spill/fill machinery corrupted a register, this would panic.
    let opts = RunOptions::default();
    for (name, cfg) in [
        ("banked 4t", CoreConfig::banked(4)),
        ("virec 4t/24r", CoreConfig::virec(4, 24)),
        ("virec 8t/24r", CoreConfig::virec(8, 24)),
    ] {
        let r = run_single(cfg, &workload, &opts);
        println!(
            "{name:>14}: {:>8} cycles, IPC {:.3}, RF hit rate {:.1}%",
            r.cycles,
            r.ipc(),
            r.stats.rf_hit_rate() * 100.0
        );
    }

    // The scalar answer, for the curious.
    let expect: u64 = (0..n).map(|i| (i % 100) * ((i * 3) % 50)).sum();
    println!("total dot product across threads = {expect}");
}
