//! Multi-core contention study (the paper's Figure 11 scenario): several
//! near-memory processors share the crossbar and DRAM; as observed memory
//! latency rises with system activity, more threads per core are needed to
//! hide it — and ViReC can provide them without growing the register file.
//!
//! ```sh
//! cargo run --release --example system_contention
//! ```

use virec::core::CoreConfig;
use virec::mem::FabricConfig;
use virec::sim::report::{f3, Table};
use virec::sim::{System, SystemConfig};
use virec::workloads::kernels;

fn main() {
    let n = 2048;
    let mut t = Table::new(
        "gather on shared fabric: per-core IPC vs system load (ViReC, 64 regs)",
        &["cores", "8 threads", "10 threads", "better"],
    );
    for ncores in [1usize, 2, 4, 8] {
        let mut ipc = Vec::new();
        for threads in [8usize, 10] {
            let mut core = CoreConfig::virec(threads, 64);
            core.max_cycles = 2_000_000_000;
            let cfg = SystemConfig {
                ncores,
                core,
                fabric: FabricConfig::default(),
            };
            let r = System::new(cfg, kernels::spatter::gather, n).run();
            ipc.push(r.mean_core_ipc());
        }
        let better = if ipc[1] > ipc[0] { "10t" } else { "8t" };
        t.row(vec![
            ncores.to_string(),
            f3(ipc[0]),
            f3(ipc[1]),
            better.into(),
        ]);
    }
    t.print();
    println!(
        "A statically banked core would need whole extra register banks to\n\
         run the 10-thread configuration; ViReC just squeezes per-thread\n\
         context in the same 64-entry RF."
    );
}
