//! Quickstart: simulate the gather kernel on a ViReC core and print the
//! headline statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use virec::core::{CoreConfig, PolicyKind};
use virec::sim::runner::{run_single, RunOptions};
use virec::workloads::{kernels, Layout};

fn main() {
    // 1. Build a workload: the Spatter-style gather kernel over 4096
    //    elements, laid out in core 0's memory slice.
    let workload = kernels::spatter::gather(4096, Layout::for_core(0));
    println!(
        "kernel `{}`: {} instructions, active context = {} registers",
        workload.name,
        workload.program().len(),
        workload.active_context_size()
    );

    // 2. Configure a ViReC core: 8 hardware threads sharing a 52-entry
    //    physical register file (80% of the active context), managed by the
    //    Least Recently Committed policy.
    let mut cfg = CoreConfig::virec(8, 52);
    cfg.policy = PolicyKind::Lrc;

    // 3. Run. The runner offloads the thread contexts into the reserved
    //    region, simulates cycle by cycle, and verifies the final
    //    architectural state against the golden interpreter.
    let result = run_single(cfg, &workload, &RunOptions::default());

    println!("cycles            : {}", result.cycles);
    println!("instructions      : {}", result.stats.instructions);
    println!("IPC               : {:.3}", result.ipc());
    println!("context switches  : {}", result.stats.context_switches);
    println!(
        "RF hit rate       : {:.1}%",
        result.stats.rf_hit_rate() * 100.0
    );
    println!("registers spilled : {}", result.stats.rf_spills);
    println!(
        "dcache miss rate  : {:.1}%",
        result.stats.dcache.miss_rate() * 100.0
    );

    // 4. Compare against the statically banked design the paper evaluates
    //    against (8 full 32-register banks instead of 52 shared entries).
    let banked = run_single(CoreConfig::banked(8), &workload, &RunOptions::default());
    println!(
        "vs banked         : {:.1}% of banked performance with {} instead of {} registers",
        100.0 * banked.cycles as f64 / result.cycles as f64,
        52,
        8 * 32
    );
}
